"""Shard-execution backends: thread/process parity and lifecycle.

The backend only decides *where* each shard's ``search_batch`` runs —
the persistence layer round-trips every array exactly and the engine is
deterministic, so results must be bitwise identical across backends on
every scenario.  The full five-scenario parity matrix and the streaming
write path are ``slow`` (each process backend spawns worker processes);
a single memory-scenario smoke test stays in the fast lane so backend
regressions surface on every push.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.datasets import load
from repro.graphs import build_vamana
from repro.index import (
    DiskIndex,
    FilteredIndex,
    L2RIndex,
    MemoryIndex,
    StreamingIndex,
)
from repro.quantization import ProductQuantizer
from repro.serving import ShardedIndex, make_shard_backend
from repro.serving.backends import ThreadBackend


@pytest.fixture(scope="module")
def setup():
    data = load("sift", n_base=160, n_queries=6, seed=5)
    quantizer = ProductQuantizer(8, 16, seed=0).fit(data.train)
    return data, quantizer


def build_memory(x, quantizer):
    return MemoryIndex(
        build_vamana(x, r=8, search_l=20, seed=0), quantizer, x
    )


def make_streaming(quantizer, dim):
    return StreamingIndex(quantizer, dim=dim, r=8, search_l=20, seed=0)


#: Engine-amortizer telemetry: legitimately varies between executions
#: (cache warmth, pool state) while answers stay bitwise identical.
VOLATILE_COUNTERS = {"table_cache_hits", "workspace_reused"}


def assert_results_identical(a, b):
    """Every batch-result field — ids, distances, all counters — bitwise."""
    assert type(a) is type(b)
    for field in dataclasses.fields(type(a)):
        if field.name in VOLATILE_COUNTERS:
            continue
        np.testing.assert_array_equal(
            getattr(a, field.name),
            getattr(b, field.name),
            err_msg=field.name,
        )


def thread_vs_process(sharded, search):
    """Run ``search`` under both backends on the same shards; compare."""
    assert sharded.backend == "thread"
    expected = search(sharded)
    sharded.set_backend("process")
    try:
        assert sharded.backend == "process"
        assert_results_identical(expected, search(sharded))
    finally:
        sharded.close()
        sharded.set_backend("thread")
    return expected


# ----------------------------------------------------------------------
# Fast lane: registry, thread-pool sizing, and one process smoke test
# ----------------------------------------------------------------------


class TestBackendSelection:
    def test_unknown_backend_rejected(self, setup):
        data, quantizer = setup
        index = build_memory(data.base, quantizer)
        with pytest.raises(ValueError, match="unknown shard backend"):
            ShardedIndex(
                [index], [np.arange(data.base.shape[0])], backend="rpc"
            )
        with pytest.raises(ValueError, match="unknown shard backend"):
            make_shard_backend("rpc", [index])

    def test_set_backend_same_name_is_noop(self, setup):
        data, quantizer = setup
        sharded = ShardedIndex.build(
            data.base, 2, lambda xs: build_memory(xs, quantizer)
        )
        before = sharded._backend
        sharded.set_backend("thread")
        assert sharded._backend is before

    def test_set_backend_unknown_keeps_current(self, setup):
        data, quantizer = setup
        sharded = ShardedIndex.build(
            data.base, 2, lambda xs: build_memory(xs, quantizer)
        )
        with pytest.raises(ValueError, match="unknown shard backend"):
            sharded.set_backend("rpc")
        assert sharded.backend == "thread"
        result = sharded.search_batch(data.queries, k=5, beam_width=16)
        assert (result.counts == 5).all()

    def test_spec_and_build_carry_backend(self, setup):
        data, quantizer = setup
        sharded = ShardedIndex.build(
            data.base,
            2,
            lambda xs: build_memory(xs, quantizer),
            backend="process",
        )
        assert sharded.backend == "process"
        sharded.close()

    def test_set_backend_keeps_attached_spec_truthful(self, setup):
        from repro.api import IndexSpec, ShardingSpec

        data, quantizer = setup
        sharded = ShardedIndex.build(
            data.base, 2, lambda xs: build_memory(xs, quantizer)
        )
        original = IndexSpec(sharding=ShardingSpec(num_shards=2))
        sharded.spec = original
        sharded.set_backend("process")
        # The attached spec follows the live backend (save_index writes
        # it verbatim), while the caller's spec object is untouched.
        assert sharded.spec.sharding.backend == "process"
        assert original.sharding.backend == "thread"
        sharded.set_backend("thread")
        assert sharded.spec.sharding.backend == "thread"
        sharded.close()


class TestThreadPoolSizing:
    """The effective width resolves once; width 1 never builds a pool."""

    def test_explicit_single_worker_skips_pool(self, setup):
        data, quantizer = setup
        sharded = ShardedIndex.build(
            data.base,
            3,
            lambda xs: build_memory(xs, quantizer),
            max_workers=1,
        )
        backend = sharded._backend
        assert isinstance(backend, ThreadBackend)
        assert backend._workers == 1
        sharded.search_batch(data.queries, k=5, beam_width=16)
        assert backend._pool is None

    def test_single_cpu_default_skips_pool(self, setup, monkeypatch):
        # max_workers=None on a single-usable-CPU host resolves to 1:
        # the old code still spun up a one-thread pool plus GC
        # finalizer for zero overlap.
        import repro.serving.backends as backends

        monkeypatch.setattr(
            backends.os, "sched_getaffinity", lambda pid: {0}
        )
        data, quantizer = setup
        sharded = ShardedIndex.build(
            data.base, 3, lambda xs: build_memory(xs, quantizer)
        )
        backend = sharded._backend
        assert backend._workers == 1
        sharded.search_batch(data.queries, k=5, beam_width=16)
        assert backend._pool is None

    def test_multi_cpu_default_builds_pool(self, setup, monkeypatch):
        import repro.serving.backends as backends

        monkeypatch.setattr(
            backends.os, "sched_getaffinity", lambda pid: set(range(8))
        )
        data, quantizer = setup
        sharded = ShardedIndex.build(
            data.base, 3, lambda xs: build_memory(xs, quantizer)
        )
        backend = sharded._backend
        assert backend._workers == 3
        sharded.search_batch(data.queries, k=5, beam_width=16)
        assert backend._pool is not None
        sharded.close()
        assert backend._pool is None

    def test_pool_width_uses_affinity_not_cpu_count(self, monkeypatch):
        # An affinity-restricted container (cgroup quota, taskset) may
        # report many cpu_count() cores while only a few are usable;
        # the pool must size from the usable set or it oversubscribes.
        import repro.serving.backends as backends

        monkeypatch.setattr(backends.os, "cpu_count", lambda: 64)
        monkeypatch.setattr(
            backends.os, "sched_getaffinity", lambda pid: {0, 1}
        )
        assert backends.usable_cpu_count() == 2

    def test_usable_cpu_count_falls_back_without_affinity(
        self, monkeypatch
    ):
        import repro.serving.backends as backends

        # Simulate a platform without the syscall surface entirely.
        monkeypatch.delattr(backends.os, "sched_getaffinity")
        monkeypatch.setattr(backends.os, "cpu_count", lambda: 6)
        assert backends.usable_cpu_count() == 6


class TestProcessSmoke:
    """Fast-lane smoke: one memory-scenario parity check per push."""

    def test_memory_parity_and_reuse_after_close(self, setup):
        data, quantizer = setup
        sharded = ShardedIndex.build(
            data.base, 2, lambda xs: build_memory(xs, quantizer)
        )
        try:
            expected = sharded.search_batch(
                data.queries, k=10, beam_width=24
            )
            sharded.set_backend("process")
            assert_results_identical(
                expected,
                sharded.search_batch(data.queries, k=10, beam_width=24),
            )
            # Closing tears the live workers down; the next search
            # respawns them from freshly shipped state.
            sharded.close()
            assert_results_identical(
                expected,
                sharded.search_batch(data.queries, k=10, beam_width=24),
            )
        finally:
            sharded.close()


# ----------------------------------------------------------------------
# Slow lane: full scenario matrix, write path, error handling
# ----------------------------------------------------------------------


@pytest.mark.slow
class TestScenarioParity:
    """Thread and process backends agree bitwise on all five scenarios."""

    def test_memory(self, setup):
        data, quantizer = setup
        sharded = ShardedIndex.build(
            data.base, 2, lambda xs: build_memory(xs, quantizer)
        )
        thread_vs_process(
            sharded,
            lambda idx: idx.search_batch(data.queries, k=10, beam_width=24),
        )

    def test_hybrid(self, setup):
        data, quantizer = setup

        def factory(xs):
            graph = build_vamana(xs, r=8, search_l=20, seed=0)
            return DiskIndex(graph, quantizer, xs, io_width=2)

        sharded = ShardedIndex.build(data.base, 2, factory)
        thread_vs_process(
            sharded,
            lambda idx: idx.search_batch(data.queries, k=10, beam_width=24),
        )

    def test_l2r(self, setup):
        data, quantizer = setup

        def factory(xs):
            graph = build_vamana(xs, r=8, search_l=20, seed=0)
            return L2RIndex(
                graph, quantizer, xs, rng=np.random.default_rng(0)
            )

        sharded = ShardedIndex.build(data.base, 2, factory)
        thread_vs_process(
            sharded,
            lambda idx: idx.search_batch(data.queries, k=10, beam_width=24),
        )

    def test_filtered(self, setup):
        data, quantizer = setup
        n = data.base.shape[0]
        labels = np.arange(n) % 3
        qlabels = np.arange(len(data.queries)) % 3

        def factory(xs, labels):
            graph = build_vamana(xs, r=8, search_l=20, seed=0)
            return FilteredIndex(graph, quantizer, xs, labels)

        sharded = ShardedIndex.build(
            data.base, 2, factory, row_arrays={"labels": labels}
        )
        thread_vs_process(
            sharded,
            lambda idx: idx.search_batch(
                data.queries, labels=qlabels, k=5, beam_width=16
            ),
        )

    def test_streaming(self, setup):
        data, quantizer = setup
        dim = data.base.shape[1]
        sharded = ShardedIndex(
            [make_streaming(quantizer, dim) for _ in range(2)]
        )
        sharded.insert_batch(data.base[:60])
        thread_vs_process(
            sharded,
            lambda idx: idx.search_batch(data.queries, k=5, beam_width=16),
        )


@pytest.mark.slow
class TestStreamingWritePath:
    """Mutations re-ship shard state to the live worker processes."""

    def twins(self, setup):
        data, quantizer = setup
        dim = data.base.shape[1]

        def fresh(backend):
            return ShardedIndex(
                [make_streaming(quantizer, dim) for _ in range(2)],
                backend=backend,
            )

        return data, fresh("thread"), fresh("process")

    def test_mutations_between_searches_stay_bitwise(self, setup):
        data, thread, proc = self.twins(setup)
        try:
            # Routing is deterministic, so both route identically.
            assert thread.insert_batch(data.base[:40]) == proc.insert_batch(
                data.base[:40]
            )
            assert_results_identical(
                thread.search_batch(data.queries, k=5, beam_width=16),
                proc.search_batch(data.queries, k=5, beam_width=16),
            )
            # Workers are live now: further writes must invalidate and
            # re-ship the mutated shards before the next search.
            thread.insert_batch(data.base[40:60])
            proc.insert_batch(data.base[40:60])
            thread.delete(3)
            proc.delete(3)
            assert thread.consolidate() == proc.consolidate()
            assert_results_identical(
                thread.search_batch(data.queries, k=8, beam_width=16),
                proc.search_batch(data.queries, k=8, beam_width=16),
            )
        finally:
            thread.close()
            proc.close()


class TestRemoteTracebacks:
    """Worker-side errors carry the worker's formatted traceback.

    ``raise payload`` alone would re-raise the unpickled exception with
    a parent-side-only traceback — the actual failing worker frame
    would be invisible.  The worker attaches ``traceback.format_exc()``
    and the parent chains it as ``__cause__``, concurrent.futures
    style.
    """

    def test_raise_worker_error_chains_remote_traceback(self):
        from repro.serving.backends import (
            _RemoteTraceback,
            _raise_worker_error,
        )

        exc = ValueError("worker-side boom")
        exc.remote_traceback = (
            "Traceback (most recent call last):\n"
            '  File "worker.py", line 1, in search\n'
            "ValueError: worker-side boom\n"
        )
        with pytest.raises(ValueError, match="worker-side boom") as info:
            _raise_worker_error(exc)
        assert isinstance(info.value.__cause__, _RemoteTraceback)
        assert "worker.py" in str(info.value.__cause__)

    def test_raise_without_remote_traceback_still_raises(self):
        from repro.serving.backends import _raise_worker_error

        with pytest.raises(KeyError):
            _raise_worker_error(KeyError("no tb attached"))

    def test_send_error_attaches_traceback(self):
        from repro.serving.backends import _send_error
        from repro.serving.net import framing

        sent = []

        class Conn:
            def send_bytes(self, blob):
                sent.append(blob)

        try:
            raise ValueError("original failure")
        except ValueError as exc:
            _send_error(Conn(), exc)
        kind, payload = framing.decode_reply(sent[0])
        assert kind == "error"
        assert isinstance(payload, ValueError)
        assert "original failure" in payload.remote_traceback
        assert "Traceback" in payload.remote_traceback

    def test_send_error_survives_unrenderable_and_closed_pipe(self):
        from repro.serving.backends import _send_error
        from repro.serving.net import framing

        class UnrenderableError(Exception):
            """str() itself explodes — the frame codec cannot encode
            the message, so _send_error must degrade, not raise."""

            def __str__(self):
                raise TypeError("cannot render me")

        sent = []

        class Conn:
            def send_bytes(self, blob):
                sent.append(blob)

        try:
            raise UnrenderableError()
        except UnrenderableError as exc:
            _send_error(Conn(), exc)
        kind, payload = framing.decode_reply(sent[0])
        assert kind == "error"
        # Degraded to a frameable stand-in that still carries the
        # original identity and the worker traceback.
        assert "UnrenderableError" in str(payload)
        assert "Traceback" in payload.remote_traceback

        class ClosedPipe:
            def send_bytes(self, blob):
                raise BrokenPipeError("pipe closed")

        # A fully closed pipe must not raise out of _send_error — that
        # would mask the original exception in the worker loop.
        try:
            raise ValueError("original failure")
        except ValueError as exc:
            _send_error(ClosedPipe(), exc)

    def test_process_search_error_includes_worker_frames(self, setup):
        data, quantizer = setup
        sharded = ShardedIndex.build(
            data.base,
            2,
            lambda xs: build_memory(xs, quantizer),
            backend="process",
        )
        try:
            with pytest.raises(Exception) as info:
                # Mis-dimensioned queries blow up inside the worker.
                sharded.search_batch(
                    data.queries[:, :-3], k=5, beam_width=16
                )
            cause = info.value.__cause__
            assert cause is not None
            assert "Traceback" in str(cause)
            assert "search_batch" in str(cause)
        finally:
            sharded.close()


@pytest.mark.slow
class TestWorkerErrors:
    def test_worker_error_propagates_and_worker_survives(self, setup):
        data, quantizer = setup
        sharded = ShardedIndex.build(
            data.base,
            2,
            lambda xs: build_memory(xs, quantizer),
            backend="process",
        )
        try:
            good = sharded.search_batch(data.queries, k=5, beam_width=16)
            # Mis-dimensioned queries blow up inside the workers; the
            # error must cross the pipe without desyncing it.
            with pytest.raises(Exception):
                sharded.search_batch(
                    data.queries[:, :-3], k=5, beam_width=16
                )
            again = sharded.search_batch(data.queries, k=5, beam_width=16)
            assert_results_identical(good, again)
        finally:
            sharded.close()

    def test_concurrent_searches_serialize_safely(self, setup):
        import threading

        data, quantizer = setup
        sharded = ShardedIndex.build(
            data.base,
            2,
            lambda xs: build_memory(xs, quantizer),
            backend="process",
        )
        try:
            expected = sharded.search_batch(
                data.queries, k=5, beam_width=16
            )
            results = {}

            # Interleaved pipe sends/recvs would cross-deliver replies;
            # the backend lock must serialize them correctly.
            def client(i):
                results[i] = sharded.search_batch(
                    data.queries, k=5, beam_width=16
                )

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(results) == 4
            for result in results.values():
                assert_results_identical(expected, result)
        finally:
            sharded.close()

    def test_dead_worker_resets_backend_and_respawns(self, setup):
        data, quantizer = setup
        sharded = ShardedIndex.build(
            data.base,
            2,
            lambda xs: build_memory(xs, quantizer),
            backend="process",
        )
        try:
            good = sharded.search_batch(data.queries, k=5, beam_width=16)
            backend = sharded._backend
            backend._procs[0].terminate()
            backend._procs[0].join()
            # The dead pipe fails loudly and resets the backend...
            with pytest.raises(RuntimeError, match="died"):
                sharded.search_batch(data.queries, k=5, beam_width=16)
            assert backend._procs is None
            # ...so the next search respawns workers and succeeds.
            again = sharded.search_batch(data.queries, k=5, beam_width=16)
            assert_results_identical(good, again)
        finally:
            sharded.close()

    def test_unpersistable_shard_fails_without_leaking_state(
        self, setup, tmp_path, monkeypatch
    ):
        import os
        import tempfile

        monkeypatch.setattr(tempfile, "tempdir", str(tmp_path))
        data, quantizer = setup

        def factory(xs):
            graph = build_vamana(xs, r=8, search_l=20, seed=0)
            # A custom table transform is the documented unpersistable
            # case: save_index raises at worker spawn.
            return DiskIndex(
                graph, quantizer, xs, io_width=2,
                table_transform=lambda table: table,
            )

        sharded = ShardedIndex.build(
            data.base, 2, factory, backend="process"
        )
        with pytest.raises(ValueError, match="cannot persist"):
            sharded.search_batch(data.queries, k=5, beam_width=16)
        assert sharded._backend._procs is None
        leftovers = [
            name
            for name in os.listdir(str(tmp_path))
            if name.startswith("repro-shard-backend-")
        ]
        assert leftovers == []
        # The same shards still serve on the thread backend.
        sharded.set_backend("thread")
        result = sharded.search_batch(data.queries, k=5, beam_width=16)
        assert (result.counts == 5).all()

    def test_context_manager_closes_workers(self, setup):
        data, quantizer = setup
        with ShardedIndex.build(
            data.base,
            2,
            lambda xs: build_memory(xs, quantizer),
            backend="process",
        ) as sharded:
            result = sharded.search_batch(data.queries, k=5, beam_width=16)
            assert (result.counts == 5).all()
            backend = sharded._backend
            assert backend._procs is not None
        assert backend._procs is None
