"""Replicated shard fleets: routing, failover, chaos, and parity.

Replication must be invisible in the answers: which replica serves a
shard's call can never change a bit, because every replica of a shard
serves the exact same persisted state and the merge is unchanged.  The
full five-scenario replicated-vs-unreplicated matrix is ``slow`` (each
process fleet spawns ``shards x replicas`` workers); a memory-scenario
smoke plus the SIGKILL chaos gate stay in the fast lane so a failover
regression surfaces on every push.

The chaos assertions are correctness, not timing: a replica is killed
mid-load and every subsequent request must succeed bitwise-identically
(failover), then the supervisor must respawn the dead worker — polled
against a generous deadline, never a wall-clock window, so the test is
deterministic on a loaded 1-CPU CI runner.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import time

import numpy as np
import pytest

from repro.api import IndexSpec, ShardingSpec, load_index, save_index
from repro.datasets import load
from repro.graphs import build_vamana
from repro.index import MemoryIndex, StreamingIndex
from repro.quantization import ProductQuantizer
from repro.serving import ReplicatedBackend, ShardedIndex
from repro.serving.replication import ReplicaDied

RESPAWN_DEADLINE_S = 60.0  # generous: polled, not a timing gate


@pytest.fixture(scope="module")
def setup():
    data = load("sift", n_base=160, n_queries=6, seed=5)
    quantizer = ProductQuantizer(8, 16, seed=0).fit(data.train)
    return data, quantizer


def build_memory(x, quantizer):
    return MemoryIndex(
        build_vamana(x, r=8, search_l=20, seed=0), quantizer, x
    )


# Engine-amortizer telemetry varies with cache/pool warmth across
# executions while the answers stay bitwise identical.
VOLATILE_COUNTERS = {"table_cache_hits", "workspace_reused"}


def assert_results_identical(a, b):
    assert type(a) is type(b)
    for field in dataclasses.fields(type(a)):
        if field.name in VOLATILE_COUNTERS:
            continue
        np.testing.assert_array_equal(
            getattr(a, field.name),
            getattr(b, field.name),
            err_msg=field.name,
        )


def replicated_vs_unreplicated(sharded, search, inner, replicas=2):
    """Search unreplicated, then as a ``replicas``-wide fleet; compare."""
    assert sharded.replicas == 1
    expected = search(sharded)
    sharded.set_backend(inner)
    sharded.set_replicas(replicas)
    try:
        assert sharded.backend == inner
        assert sharded.replicas == replicas
        assert_results_identical(expected, search(sharded))
    finally:
        sharded.close()
        sharded.set_replicas(1)
        sharded.set_backend("thread")
    return expected


def wait_for_respawn(sharded, deadline_s=RESPAWN_DEADLINE_S):
    """Poll fleet_status until every replica is alive again and at
    least one restart happened; fail loudly past the deadline."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        rows = sharded.fleet_status()
        if all(r["alive"] for r in rows) and any(
            r["restarts"] > 0 for r in rows
        ):
            return rows
        time.sleep(0.1)
    pytest.fail(
        "supervisor did not respawn the killed replica within "
        f"{deadline_s:.0f}s: {sharded.fleet_status()}"
    )


# ----------------------------------------------------------------------
# Fast lane: smoke, introspection, validation, SIGKILL chaos gate
# ----------------------------------------------------------------------


class TestReplicationSmoke:
    def test_thread_replicas_identical_to_unreplicated(self, setup):
        data, quantizer = setup
        sharded = ShardedIndex.build(
            data.base, 2, lambda xs: build_memory(xs, quantizer)
        )
        replicated_vs_unreplicated(
            sharded,
            lambda idx: idx.search_batch(data.queries, k=10, beam_width=24),
            inner="thread",
            replicas=3,
        )

    def test_constructor_replicas(self, setup):
        data, quantizer = setup
        sharded = ShardedIndex.build(
            data.base,
            2,
            lambda xs: build_memory(xs, quantizer),
            replicas=2,
        )
        assert sharded.replicas == 2
        assert sharded.backend == "thread"
        assert isinstance(sharded._backend, ReplicatedBackend)
        baseline = ShardedIndex.build(
            data.base, 2, lambda xs: build_memory(xs, quantizer)
        )
        assert_results_identical(
            baseline.search_batch(data.queries, k=10, beam_width=24),
            sharded.search_batch(data.queries, k=10, beam_width=24),
        )

    def test_fleet_status_shape_and_lazy_spawn(self, setup):
        data, quantizer = setup
        sharded = ShardedIndex.build(
            data.base,
            2,
            lambda xs: build_memory(xs, quantizer),
            replicas=2,
        )
        rows = sharded.fleet_status()
        assert len(rows) == 4  # 2 shards x 2 replicas, configured shape
        assert all(not r["alive"] for r in rows)  # fleet spawns lazily
        sharded.search_batch(data.queries, k=5, beam_width=16)
        rows = sharded.fleet_status()
        assert {(r["shard"], r["replica"]) for r in rows} == {
            (s, r) for s in range(2) for r in range(2)
        }
        assert all(r["alive"] for r in rows)
        assert all(r["restarts"] == 0 for r in rows)
        assert all(r["in_flight"] == 0 for r in rows)
        assert all(r["backend"] == "thread" for r in rows)

    def test_unreplicated_fleet_status_still_answers(self, setup):
        data, quantizer = setup
        sharded = ShardedIndex.build(
            data.base, 2, lambda xs: build_memory(xs, quantizer)
        )
        rows = sharded.fleet_status()
        assert len(rows) == 2
        assert all(r["alive"] for r in rows)

    def test_validation(self, setup):
        data, quantizer = setup
        shards = [build_memory(data.base, quantizer)]
        with pytest.raises(ValueError, match="replicas"):
            ReplicatedBackend(shards, replicas=0)
        with pytest.raises(ValueError, match="backend"):
            ReplicatedBackend(shards, inner="carrier-pigeon")
        sharded = ShardedIndex.build(
            data.base, 2, lambda xs: build_memory(xs, quantizer)
        )
        with pytest.raises(ValueError):
            sharded.set_replicas(0)

    def test_set_replicas_is_noop_when_unchanged(self, setup):
        data, quantizer = setup
        sharded = ShardedIndex.build(
            data.base,
            2,
            lambda xs: build_memory(xs, quantizer),
            replicas=2,
        )
        backend = sharded._backend
        sharded.set_replicas(2)
        assert sharded._backend is backend


class TestSpecAndPersistence:
    def test_sharding_spec_replicas_round_trip(self):
        spec = IndexSpec(
            sharding=ShardingSpec(num_shards=2, backend="process", replicas=3)
        )
        restored = IndexSpec.from_json(spec.to_json())
        assert restored.sharding.replicas == 3
        assert restored == spec

    def test_sharding_spec_rejects_unknown_keys(self):
        spec = IndexSpec(sharding=ShardingSpec(replicas=2))
        data = spec.to_dict()
        data["sharding"]["replcias"] = 2  # typo'd key must not pass
        with pytest.raises(ValueError, match="replcias"):
            IndexSpec.from_dict(data)

    def test_save_load_preserves_replicas(self, setup, tmp_path):
        data, quantizer = setup
        sharded = ShardedIndex.build(
            data.base,
            2,
            lambda xs: build_memory(xs, quantizer),
            replicas=2,
        )
        expected = sharded.search_batch(data.queries, k=5, beam_width=16)
        save_index(sharded, tmp_path / "fleet")
        loaded = load_index(tmp_path / "fleet")
        assert loaded.replicas == 2
        assert loaded.backend == "thread"
        assert_results_identical(
            expected, loaded.search_batch(data.queries, k=5, beam_width=16)
        )


class TestChaos:
    """SIGKILL a process replica mid-load: zero failed requests,
    answers stay bitwise identical, supervisor respawns the worker."""

    REQUESTS = 8

    def test_sigkill_mid_load_zero_failed_requests(self, setup):
        data, quantizer = setup
        sharded = ShardedIndex.build(
            data.base, 2, lambda xs: build_memory(xs, quantizer)
        )
        expected = sharded.search_batch(data.queries, k=10, beam_width=24)
        sharded.set_backend("process")
        sharded.set_replicas(2)
        try:
            # Warm the fleet so every replica is up before the kill.
            assert_results_identical(
                expected,
                sharded.search_batch(data.queries, k=10, beam_width=24),
            )
            rows = sharded.fleet_status()
            victim = next(r["pid"] for r in rows if r["pid"] is not None)
            assert all(r["alive"] for r in rows)

            failed = 0
            for i in range(self.REQUESTS):
                if i == 1:
                    os.kill(victim, signal.SIGKILL)
                try:
                    result = sharded.search_batch(
                        data.queries, k=10, beam_width=24
                    )
                except Exception:
                    failed += 1
                    continue
                assert_results_identical(expected, result)
            assert failed == 0

            rows = wait_for_respawn(sharded)
            assert victim not in {r["pid"] for r in rows}
            # The healed fleet still answers identically.
            assert_results_identical(
                expected,
                sharded.search_batch(data.queries, k=10, beam_width=24),
            )
        finally:
            sharded.close()

    def test_total_replica_loss_pads_the_shard(self, setup):
        data, quantizer = setup
        sharded = ShardedIndex.build(
            data.base, 2, lambda xs: build_memory(xs, quantizer)
        )
        backend = ReplicatedBackend(
            sharded.shards, replicas=2, inner="thread"
        )
        old = sharded._backend
        sharded._backend = backend
        old.close()
        try:
            sharded.search_batch(data.queries, k=5, beam_width=16)
            backend._ensure_fleet()
            # Kill every replica of shard 1 and block respawn: the
            # shard contributes nothing, the merge pads, no exception.
            with backend._fleet_lock:
                for replica in backend._fleet[1]:
                    replica.alive = False
                    replica.respawn_and_verify = lambda timeout: False
            result = sharded.search_batch(data.queries, k=5, beam_width=16)
            solo = ShardedIndex(
                [sharded.shards[0]],
                global_ids=[sharded._global_ids[0]],
            ).search_batch(data.queries, k=5, beam_width=16)
            np.testing.assert_array_equal(result.ids, solo.ids)
            # With *every* shard dead the request fails loudly.
            with backend._fleet_lock:
                for replica in backend._fleet[0]:
                    replica.alive = False
                    replica.respawn_and_verify = lambda timeout: False
            with pytest.raises(RuntimeError, match="no replicas"):
                sharded.search_batch(data.queries, k=5, beam_width=16)
        finally:
            sharded.close()

    def test_application_errors_do_not_fail_over(self, setup):
        data, quantizer = setup
        sharded = ShardedIndex.build(
            data.base,
            2,
            lambda xs: build_memory(xs, quantizer),
            replicas=2,
        )
        bad = data.queries[:, :-3]  # wrong dimensionality
        with pytest.raises(Exception) as info:
            sharded.search_batch(bad, k=5, beam_width=16)
        assert not isinstance(info.value, ReplicaDied)
        # The replicas that raised are still healthy — the error was
        # the request's fault, not the worker's.
        assert all(r["alive"] for r in sharded.fleet_status())
        sharded.close()


# ----------------------------------------------------------------------
# Nightly lane: full five-scenario parity matrix over process fleets
# ----------------------------------------------------------------------


@pytest.mark.slow
class TestScenarioParityReplicated:
    """Replicated process fleets agree bitwise with the unreplicated
    thread backend on all five scenarios."""

    def test_memory(self, setup):
        data, quantizer = setup
        sharded = ShardedIndex.build(
            data.base, 2, lambda xs: build_memory(xs, quantizer)
        )
        replicated_vs_unreplicated(
            sharded,
            lambda idx: idx.search_batch(data.queries, k=10, beam_width=24),
            inner="process",
        )

    def test_hybrid(self, setup):
        from repro.index import DiskIndex

        data, quantizer = setup

        def factory(xs):
            graph = build_vamana(xs, r=8, search_l=20, seed=0)
            return DiskIndex(graph, quantizer, xs, io_width=2)

        sharded = ShardedIndex.build(data.base, 2, factory)
        replicated_vs_unreplicated(
            sharded,
            lambda idx: idx.search_batch(data.queries, k=10, beam_width=24),
            inner="process",
        )

    def test_l2r(self, setup):
        from repro.index import L2RIndex

        data, quantizer = setup

        def factory(xs):
            graph = build_vamana(xs, r=8, search_l=20, seed=0)
            return L2RIndex(
                graph, quantizer, xs, rng=np.random.default_rng(0)
            )

        sharded = ShardedIndex.build(data.base, 2, factory)
        replicated_vs_unreplicated(
            sharded,
            lambda idx: idx.search_batch(data.queries, k=10, beam_width=24),
            inner="process",
        )

    def test_filtered(self, setup):
        from repro.index import FilteredIndex

        data, quantizer = setup
        n = data.base.shape[0]
        labels = np.arange(n) % 3
        qlabels = np.arange(len(data.queries)) % 3

        def factory(xs, labels):
            graph = build_vamana(xs, r=8, search_l=20, seed=0)
            return FilteredIndex(graph, quantizer, xs, labels)

        sharded = ShardedIndex.build(
            data.base, 2, factory, row_arrays={"labels": labels}
        )
        replicated_vs_unreplicated(
            sharded,
            lambda idx: idx.search_batch(
                data.queries, labels=qlabels, k=5, beam_width=16
            ),
            inner="process",
        )

    def test_streaming(self, setup):
        data, quantizer = setup
        dim = data.base.shape[1]
        sharded = ShardedIndex(
            [
                StreamingIndex(quantizer, dim=dim, r=8, search_l=20, seed=0)
                for _ in range(2)
            ]
        )
        sharded.insert_batch(data.base[:60])
        replicated_vs_unreplicated(
            sharded,
            lambda idx: idx.search_batch(data.queries, k=5, beam_width=16),
            inner="process",
        )

    def test_streaming_write_path_reaches_all_replicas(self, setup):
        data, quantizer = setup
        dim = data.base.shape[1]
        twin = ShardedIndex(
            [
                StreamingIndex(quantizer, dim=dim, r=8, search_l=20, seed=0)
                for _ in range(2)
            ]
        )
        twin.insert_batch(data.base[:40])
        twin.insert_batch(data.base[40:80])
        expected = twin.search_batch(data.queries, k=5, beam_width=16)

        sharded = ShardedIndex(
            [
                StreamingIndex(quantizer, dim=dim, r=8, search_l=20, seed=0)
                for _ in range(2)
            ]
        )
        sharded.insert_batch(data.base[:40])
        sharded.set_backend("process")
        sharded.set_replicas(2)
        try:
            sharded.search_batch(data.queries, k=5, beam_width=16)
            # Mutate while the fleet is live: every replica of every
            # shard must serve the re-shipped state.
            sharded.insert_batch(data.base[40:80])
            for _ in range(4):  # rotate across replicas
                assert_results_identical(
                    expected,
                    sharded.search_batch(data.queries, k=5, beam_width=16),
                )
        finally:
            sharded.close()
