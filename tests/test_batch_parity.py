"""Batch/scalar parity: ``search_batch`` must be bitwise identical to
looping ``search`` over the same queries, for every index scenario.

The batched engine only amortizes work (one broadcasted table build,
one lockstep routing kernel, shared visited-set buffers); it performs
the same arithmetic in the same order per query, so ids, distances,
and every counter must match *exactly* — no tolerances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load
from repro.graphs import build_hnsw, build_vamana
from repro.index import (
    DiskIndex,
    FilteredIndex,
    L2RIndex,
    MemoryIndex,
    StreamingIndex,
)
from repro.quantization import OptimizedProductQuantizer, ProductQuantizer

# Heavyweight parity suite (full scalar-vs-batch sweeps per scenario).
# Runs in tier-1 (`make test`) and the nightly CI lane, not the fast lane.
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def setup():
    data = load("sift", n_base=500, n_queries=16, seed=3)
    quantizer = ProductQuantizer(8, 16, seed=0).fit(data.train)
    vamana = build_vamana(data.base, r=10, search_l=24, seed=0)
    hnsw = build_hnsw(data.base, m=6, ef_construction=24, seed=0)
    return data, quantizer, vamana, hnsw


def assert_rows_match(scalar_results, batch_result, extra_attrs=()):
    """Every row of the batch result equals its scalar counterpart."""
    assert batch_result.num_queries == len(scalar_results)
    for i, scalar in enumerate(scalar_results):
        row = batch_result.row(i)
        np.testing.assert_array_equal(scalar.ids, row.ids, err_msg=f"q{i} ids")
        np.testing.assert_array_equal(
            scalar.distances, row.distances, err_msg=f"q{i} distances"
        )
        assert scalar.hops == row.hops, f"q{i} hops"
        assert (
            scalar.distance_computations == row.distance_computations
        ), f"q{i} distance_computations"
        for attr in extra_attrs:
            assert getattr(scalar, attr) == pytest.approx(
                getattr(row, attr)
            ), f"q{i} {attr}"


class TestMemoryParity:
    @pytest.mark.parametrize("graph_kind", ["vamana", "hnsw"])
    @pytest.mark.parametrize("mode", ["adc", "sdc"])
    def test_modes_and_graphs(self, setup, graph_kind, mode):
        data, quantizer, vamana, hnsw = setup
        graph = vamana if graph_kind == "vamana" else hnsw
        index = MemoryIndex(graph, quantizer, data.base, distance_mode=mode)
        scalars = [
            index.search(q, k=10, beam_width=24) for q in data.queries
        ]
        batch = index.search_batch(data.queries, k=10, beam_width=24)
        assert_rows_match(scalars, batch)

    def test_aggregated_counters(self, setup):
        data, quantizer, vamana, _ = setup
        index = MemoryIndex(vamana, quantizer, data.base)
        scalars = [
            index.search(q, k=10, beam_width=24) for q in data.queries
        ]
        batch = index.search_batch(data.queries, k=10, beam_width=24)
        assert batch.total_hops == sum(r.hops for r in scalars)
        assert batch.total_distance_computations == sum(
            r.distance_computations for r in scalars
        )

    def test_rotated_quantizer(self, setup):
        # OPQ transforms queries through a rotation; the batch path
        # must apply it row-wise (a 2-D gemm takes a different BLAS
        # path and drifts by ULPs, breaking bitwise parity).
        data, _, vamana, _ = setup
        opq = OptimizedProductQuantizer(8, 16, opq_iter=3, seed=0).fit(
            data.train
        )
        index = MemoryIndex(vamana, opq, data.base)
        scalars = [
            index.search(q, k=10, beam_width=24) for q in data.queries
        ]
        batch = index.search_batch(data.queries, k=10, beam_width=24)
        assert_rows_match(scalars, batch)

    def test_rotated_quantizer_sdc(self, setup):
        data, _, vamana, _ = setup
        opq = OptimizedProductQuantizer(8, 16, opq_iter=3, seed=0).fit(
            data.train
        )
        index = MemoryIndex(vamana, opq, data.base, distance_mode="sdc")
        scalars = [
            index.search(q, k=10, beam_width=24) for q in data.queries
        ]
        batch = index.search_batch(data.queries, k=10, beam_width=24)
        assert_rows_match(scalars, batch)

    def test_stacked_shapes(self, setup):
        data, quantizer, vamana, _ = setup
        batch = MemoryIndex(vamana, quantizer, data.base).search_batch(
            data.queries, k=7, beam_width=24
        )
        assert batch.ids.shape == (len(data.queries), 7)
        assert batch.distances.shape == (len(data.queries), 7)
        assert batch.ids.dtype == np.int64


class TestL2RParity:
    def test_reweighted_tables(self, setup):
        data, quantizer, vamana, _ = setup
        index = L2RIndex(
            vamana, quantizer, data.base, rng=np.random.default_rng(5)
        )
        scalars = [
            index.search(q, k=10, beam_width=24) for q in data.queries
        ]
        batch = index.search_batch(data.queries, k=10, beam_width=24)
        assert_rows_match(scalars, batch)


class TestDiskParity:
    @pytest.mark.parametrize("io_width", [1, 4])
    def test_hybrid(self, setup, io_width):
        data, quantizer, vamana, _ = setup
        index = DiskIndex(vamana, quantizer, data.base, io_width=io_width)
        scalars = [
            index.search(q, k=10, beam_width=24) for q in data.queries
        ]
        batch = index.search_batch(data.queries, k=10, beam_width=24)
        assert_rows_match(scalars, batch)

    def test_io_accounting(self, setup):
        data, quantizer, vamana, _ = setup
        index = DiskIndex(vamana, quantizer, data.base, io_width=4)
        scalars = [
            index.search(q, k=10, beam_width=24) for q in data.queries
        ]
        batch = index.search_batch(data.queries, k=10, beam_width=24)
        for i, scalar in enumerate(scalars):
            row = batch.row(i)
            assert scalar.io_rounds == row.io_rounds, f"q{i}"
            assert scalar.page_reads == row.page_reads, f"q{i}"
            assert scalar.simulated_io_us == pytest.approx(
                row.simulated_io_us
            ), f"q{i}"
        assert batch.total_page_reads == sum(r.page_reads for r in scalars)


class TestStreamingParity:
    def test_with_tombstones(self, setup):
        data, quantizer, _, _ = setup
        index = StreamingIndex(
            quantizer, dim=data.base.shape[1], r=10, search_l=24, seed=0
        )
        index.insert_batch(data.base[:250])
        for v in (3, 20, 77, 120):
            index.delete(v)
        scalars = [
            index.search(q, k=10, beam_width=24) for q in data.queries
        ]
        batch = index.search_batch(data.queries, k=10, beam_width=24)
        assert_rows_match(scalars, batch)

    def test_after_consolidation(self, setup):
        data, quantizer, _, _ = setup
        index = StreamingIndex(
            quantizer, dim=data.base.shape[1], r=10, search_l=24, seed=0
        )
        index.insert_batch(data.base[:150])
        for v in (1, 5, 30):
            index.delete(v)
        index.consolidate()
        scalars = [
            index.search(q, k=8, beam_width=20) for q in data.queries
        ]
        batch = index.search_batch(data.queries, k=8, beam_width=20)
        assert_rows_match(scalars, batch)


class TestFilteredParity:
    def test_per_query_labels(self, setup):
        data, quantizer, vamana, _ = setup
        labels = np.arange(data.base.shape[0]) % 5
        index = FilteredIndex(vamana, quantizer, data.base, labels)
        qlabels = np.arange(len(data.queries)) % 5
        scalars = [
            index.search(q, int(lab), k=5, beam_width=12, max_beam_width=64)
            for q, lab in zip(data.queries, qlabels)
        ]
        batch = index.search_batch(
            data.queries, qlabels, k=5, beam_width=12, max_beam_width=64
        )
        assert_rows_match(scalars, batch, extra_attrs=("beam_width_used",))

    def test_scalar_label_broadcast(self, setup):
        data, quantizer, vamana, _ = setup
        labels = np.arange(data.base.shape[0]) % 3
        index = FilteredIndex(vamana, quantizer, data.base, labels)
        scalars = [
            index.search(q, 1, k=5, beam_width=12, max_beam_width=64)
            for q in data.queries
        ]
        batch = index.search_batch(
            data.queries, 1, k=5, beam_width=12, max_beam_width=64
        )
        assert_rows_match(scalars, batch, extra_attrs=("beam_width_used",))

    def test_escalation_tracked(self, setup):
        # A rare label forces some queries to escalate the beam; the
        # batch path must follow the same schedule per query.
        data, quantizer, vamana, _ = setup
        n = data.base.shape[0]
        labels = np.zeros(n, dtype=np.int64)
        labels[:7] = 1  # rare label
        index = FilteredIndex(vamana, quantizer, data.base, labels)
        scalars = [
            index.search(q, 1, k=5, beam_width=8, max_beam_width=128)
            for q in data.queries
        ]
        batch = index.search_batch(
            data.queries, 1, k=5, beam_width=8, max_beam_width=128
        )
        assert_rows_match(scalars, batch, extra_attrs=("beam_width_used",))
        assert (batch.beam_widths_used >= 8).all()


class TestTableOverrideQuantizers:
    """Quantizers that customize per-query table construction (L&C's
    concatenated refinement table, RQ's additive level table) must work
    through every engine path: the batch table factory dispatches
    through their ``lookup_table`` override, and scalar search is the
    B=1 batch."""

    @pytest.mark.parametrize("kind", ["lnc", "rq"])
    def test_memory_and_disk_paths(self, setup, kind):
        from repro.quantization import LinkAndCodeQuantizer, ResidualQuantizer

        data, _, vamana, _ = setup
        if kind == "lnc":
            quantizer = LinkAndCodeQuantizer(4, 16, n_sq=1, seed=0).fit(
                data.train
            )
        else:
            quantizer = ResidualQuantizer(
                num_levels=2, num_codewords=16, seed=0
            ).fit(data.train)

        memory = MemoryIndex(vamana, quantizer, data.base)
        scalars = [
            memory.search(q, k=5, beam_width=16) for q in data.queries
        ]
        assert_rows_match(
            scalars, memory.search_batch(data.queries, k=5, beam_width=16)
        )

        disk = DiskIndex(vamana, quantizer, data.base)
        scalars = [disk.search(q, k=5, beam_width=16) for q in data.queries]
        assert_rows_match(
            scalars, disk.search_batch(data.queries, k=5, beam_width=16)
        )

    def test_float32_storage_rejects_table_overrides(self, setup):
        from repro.quantization import ResidualQuantizer

        data, _, vamana, _ = setup
        quantizer = ResidualQuantizer(
            num_levels=2, num_codewords=16, seed=0
        ).fit(data.train)
        with pytest.raises(ValueError, match="float32"):
            MemoryIndex(
                vamana, quantizer, data.base, storage_dtype=np.float32
            )
