"""Hot-path engine overhaul invariants.

Three amortizers were layered under the lockstep kernel — the packed
CSR adjacency, the reusable kernel workspaces, and the cross-request
ADC table cache — and every one of them must be *bitwise invisible*:

* routing over :class:`~repro.graphs.PackedAdjacency` equals routing
  over the original list-of-arrays adjacency;
* a search on a recycled (dirty) workspace equals a search on fresh
  buffers;
* a cache-warm search equals the cold search that seeded the cache,
  on every scenario including the filtered qmap path and the sharded
  and dynamic-batching serving paths.

The telemetry (``table_cache_hits`` / ``workspace_reused`` counters,
``engine_status()``) is asserted separately — it is *allowed* to vary
between executions; the answers are not.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.datasets import load
from repro.engine import KernelProfile, KernelWorkspace, WorkspacePool
from repro.graphs import PackedAdjacency, beam_search_batch, build_vamana
from repro.index import (
    DiskIndex,
    FilteredIndex,
    L2RIndex,
    MemoryIndex,
    StreamingIndex,
)
from repro.quantization import ProductQuantizer, TableCache
from repro.quantization.adc import BatchLookupTable, LookupTable
from repro.serving import DynamicBatcher, ShardedIndex

VOLATILE_COUNTERS = {"table_cache_hits", "workspace_reused"}


@pytest.fixture(scope="module")
def setup():
    data = load("sift", n_base=300, n_queries=8, seed=7)
    quantizer = ProductQuantizer(8, 16, seed=0).fit(data.train)
    graph = build_vamana(data.base, r=8, search_l=20, seed=0)
    return data, quantizer, graph


def make_index(name, setup):
    data, quantizer, graph = setup
    if name == "memory":
        return MemoryIndex(graph, quantizer, data.base)
    if name == "l2r":
        return L2RIndex(
            graph, quantizer, data.base, rng=np.random.default_rng(0)
        )
    if name == "disk":
        return DiskIndex(graph, quantizer, data.base)
    if name == "filtered":
        labels = np.arange(data.base.shape[0]) % 3
        return FilteredIndex(graph, quantizer, data.base, labels)
    if name == "streaming":
        index = StreamingIndex(
            quantizer, dim=data.base.shape[1], r=8, search_l=20, seed=0
        )
        index.insert_batch(data.base[:120])
        return index
    raise AssertionError(name)


def run_search(name, index, queries):
    if name == "filtered":
        qlabels = np.arange(queries.shape[0]) % 3
        return index.search_batch(queries, qlabels, k=5, beam_width=16)
    return index.search_batch(queries, k=5, beam_width=16)


def assert_same_answers(a, b):
    """Every field except the volatile amortizer telemetry, bitwise."""
    assert type(a) is type(b)
    for field in dataclasses.fields(type(a)):
        if field.name in VOLATILE_COUNTERS:
            continue
        np.testing.assert_array_equal(
            getattr(a, field.name), getattr(b, field.name),
            err_msg=field.name,
        )


# ----------------------------------------------------------------------
# Packed adjacency
# ----------------------------------------------------------------------


class TestPackedAdjacency:
    def test_round_trip_and_views(self):
        lists = [[1, 2], [], [0, 3, 1], [2]]
        packed = PackedAdjacency.from_lists(lists)
        assert len(packed) == 4
        np.testing.assert_array_equal(packed.degrees(), [2, 0, 3, 1])
        for v, nbrs in enumerate(lists):
            np.testing.assert_array_equal(packed[v], nbrs)
        round_trip = packed.to_lists()
        assert len(round_trip) == len(lists)
        for got, want in zip(round_trip, lists):
            np.testing.assert_array_equal(got, want)

    def test_gather_matches_concatenation(self):
        rng = np.random.default_rng(0)
        lists = [
            list(rng.integers(0, 50, size=rng.integers(0, 9)))
            for _ in range(50)
        ]
        packed = PackedAdjacency.from_lists(lists)
        vertices = np.array([3, 3, 0, 49, 7], dtype=np.int64)
        flat, lens = packed.gather(vertices)
        expected = np.concatenate(
            [np.asarray(lists[v], dtype=np.int64) for v in vertices]
        )
        np.testing.assert_array_equal(flat, expected)
        np.testing.assert_array_equal(
            lens, [len(lists[v]) for v in vertices]
        )

    def test_rejects_inconsistent_offsets(self):
        with pytest.raises(ValueError, match="offsets"):
            PackedAdjacency(
                neighbors=np.arange(3, dtype=np.int64),
                offsets=np.array([0, 2], dtype=np.int64),
            )

    def test_kernel_parity_packed_vs_lists(self, setup):
        data, _, graph = setup
        lists = [np.asarray(nbrs) for nbrs in graph.adjacency]
        packed = PackedAdjacency.from_lists(lists)
        queries = data.queries
        base = data.base

        def dist_fn(qidx, vertex_ids):
            diff = base[vertex_ids] - queries[qidx]
            return np.einsum("ij,ij->i", diff, diff)

        entries = np.full(
            queries.shape[0], graph.entry_point, dtype=np.int64
        )
        a = beam_search_batch(lists, entries, dist_fn, 16, k=5)
        b = beam_search_batch(packed, entries, dist_fn, 16, k=5)
        for field in dataclasses.fields(type(a)):
            np.testing.assert_array_equal(
                getattr(a, field.name), getattr(b, field.name),
                err_msg=field.name,
            )

    def test_graph_survives_save_load(self, setup, tmp_path):
        from repro.graphs import load_graph, save_graph

        _, _, graph = setup
        save_graph(graph, tmp_path / "g.npz")
        loaded = load_graph(tmp_path / "g.npz")
        packed = loaded.packed()
        np.testing.assert_array_equal(
            packed.neighbors, graph.packed().neighbors
        )
        np.testing.assert_array_equal(
            packed.offsets, graph.packed().offsets
        )


# ----------------------------------------------------------------------
# Workspace reuse
# ----------------------------------------------------------------------


class TestWorkspaceReuse:
    def test_dirty_workspace_is_invisible(self, setup):
        data, quantizer, graph = setup
        index = MemoryIndex(graph, quantizer, data.base)
        fresh = index.search_batch(data.queries, k=5, beam_width=16)
        assert not fresh.workspace_reused.any()
        again = index.search_batch(data.queries, k=5, beam_width=16)
        assert again.workspace_reused.all()
        assert_same_answers(fresh, again)

    def test_workspace_resizes_across_batch_shapes(self, setup):
        data, quantizer, graph = setup
        index = MemoryIndex(graph, quantizer, data.base)
        # Grow, shrink, regrow: the recycled buffers must re-shape
        # without leaking state between shapes.
        small_cold = index.search_batch(data.queries[:2], k=5, beam_width=8)
        index.search_batch(data.queries, k=5, beam_width=32)
        small_warm = index.search_batch(data.queries[:2], k=5, beam_width=8)
        assert small_warm.workspace_reused.all()
        assert_same_answers(small_cold, small_warm)

    def test_pool_recycles_and_reports(self):
        pool = WorkspacePool()
        ws = pool.acquire()
        assert isinstance(ws, KernelWorkspace)
        assert not ws.reused
        pool.release(ws)
        ws2 = pool.acquire()
        assert ws2 is ws
        assert ws2.reused
        pool.release(ws2)
        stats = pool.stats()
        assert stats["created"] == 1
        assert stats["reuses"] == 1

    def test_concurrent_acquires_get_distinct_workspaces(self):
        pool = WorkspacePool()
        a, b = pool.acquire(), pool.acquire()
        assert a is not b
        pool.release(a)
        pool.release(b)


# ----------------------------------------------------------------------
# Table cache: unit behavior
# ----------------------------------------------------------------------


class TestTableCache:
    @staticmethod
    def factory(queries):
        queries = np.atleast_2d(queries)
        # A deterministic, row-independent stand-in table build.
        tables = np.stack(
            [np.outer(np.arange(2.0), q[:3] + 1.0) for q in queries]
        )
        return BatchLookupTable(tables=tables)

    def test_hit_returns_bitwise_equal_rows(self):
        cache = TableCache(capacity=8)
        queries = np.arange(12.0).reshape(2, 6)
        cold, mask = cache.get_batch("fp", queries, self.factory)
        assert not mask.any()
        warm, mask = cache.get_batch("fp", queries, self.factory)
        assert mask.all()
        np.testing.assert_array_equal(cold.tables, warm.tables)

    def test_partial_hit_stitches_exactly(self):
        cache = TableCache(capacity=8)
        queries = np.arange(18.0).reshape(3, 6)
        cache.get_batch("fp", queries[:2], self.factory)
        stitched, mask = cache.get_batch("fp", queries, self.factory)
        np.testing.assert_array_equal(mask, [True, True, False])
        np.testing.assert_array_equal(
            stitched.tables, self.factory(queries).tables
        )

    def test_fingerprint_mismatch_misses(self):
        cache = TableCache(capacity=8)
        queries = np.arange(6.0).reshape(1, 6)
        cache.get_batch("fp-a", queries, self.factory)
        _, mask = cache.get_batch("fp-b", queries, self.factory)
        assert not mask.any()

    def test_lru_eviction(self):
        cache = TableCache(capacity=2)
        q = np.arange(18.0).reshape(3, 6)
        cache.get_batch("fp", q[0], self.factory)
        cache.get_batch("fp", q[1], self.factory)
        cache.get_batch("fp", q[0], self.factory)  # refresh q0
        cache.get_batch("fp", q[2], self.factory)  # evicts q1 (LRU)
        assert len(cache) == 2
        _, mask0 = cache.get_batch("fp", q[0], self.factory)
        assert mask0.all()
        _, mask1 = cache.get_batch("fp", q[1], self.factory)
        assert not mask1.any()
        assert cache.stats()["evictions"] >= 1

    def test_stats_and_clear(self):
        cache = TableCache(capacity=4)
        q = np.arange(6.0).reshape(1, 6)
        cache.get_batch("fp", q, self.factory)
        cache.get_batch("fp", q, self.factory)
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["size"] == 1
        assert stats["hit_rate"] == pytest.approx(0.5)
        cache.clear()
        assert len(cache) == 0
        _, mask = cache.get_batch("fp", q, self.factory)
        assert not mask.any()

    def test_hits_never_alias_cache_storage(self):
        cache = TableCache(capacity=4)
        q = np.arange(6.0).reshape(1, 6)
        cache.get_batch("fp", q, self.factory)
        warm, _ = cache.get_batch("fp", q, self.factory)
        warm.tables[:] = -1.0  # caller may scribble on its copy
        again, mask = cache.get_batch("fp", q, self.factory)
        assert mask.all()
        np.testing.assert_array_equal(
            again.tables, self.factory(q).tables
        )

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            TableCache(capacity=0)


# ----------------------------------------------------------------------
# Cache warm vs cold: every scenario, bitwise
# ----------------------------------------------------------------------


SCENARIOS = ["memory", "l2r", "disk", "filtered", "streaming"]


class TestCachedSearchParity:
    @pytest.mark.parametrize("name", SCENARIOS)
    def test_warm_equals_cold(self, setup, name):
        data, _, _ = setup
        index = make_index(name, setup)
        cold = run_search(name, index, data.queries)
        assert not cold.table_cache_hits.any()
        warm = run_search(name, index, data.queries)
        assert warm.table_cache_hits.all()
        assert_same_answers(cold, warm)

    @pytest.mark.parametrize("name", SCENARIOS)
    def test_partial_overlap_stream(self, setup, name):
        data, _, _ = setup
        index = make_index(name, setup)
        run_search(name, index, data.queries[:4])
        mixed = run_search(name, index, data.queries)
        np.testing.assert_array_equal(
            mixed.table_cache_hits[:4], np.ones(4, dtype=np.int64)
        )
        np.testing.assert_array_equal(
            mixed.table_cache_hits[4:], np.zeros(4, dtype=np.int64)
        )
        fresh = run_search(name, make_index(name, setup), data.queries)
        assert_same_answers(fresh, mixed)

    @pytest.mark.parametrize("name", SCENARIOS)
    def test_engine_status_surfaces_counters(self, setup, name):
        data, _, _ = setup
        index = make_index(name, setup)
        run_search(name, index, data.queries)
        run_search(name, index, data.queries)
        status = index.engine_status()
        assert status["table_cache"]["hits"] >= data.queries.shape[0]
        assert status["workspace_pool"]["reuses"] >= 1

    def test_invalidate_table_cache(self, setup):
        data, _, _ = setup
        index = make_index("memory", setup)
        run_search("memory", index, data.queries)
        index.invalidate_table_cache()
        again = run_search("memory", index, data.queries)
        assert not again.table_cache_hits.any()

    def test_scalar_search_reports_hit(self, setup):
        data, _, _ = setup
        index = make_index("memory", setup)
        cold = index.search(data.queries[0], k=5, beam_width=16)
        assert cold.table_cache_hit == 0
        warm = index.search(data.queries[0], k=5, beam_width=16)
        assert warm.table_cache_hit == 1
        np.testing.assert_array_equal(cold.ids, warm.ids)
        np.testing.assert_array_equal(cold.distances, warm.distances)


class TestStreamingInvalidation:
    def test_inserts_keep_cache_but_invalidate_packed(self, setup):
        data, quantizer, _ = setup
        index = StreamingIndex(
            quantizer, dim=data.base.shape[1], r=8, search_l=20, seed=0
        )
        index.insert_batch(data.base[:100])
        index.search_batch(data.queries, k=5, beam_width=16)
        packed_before = index._packed_adjacency()
        index.insert_batch(data.base[100:140])
        assert index._packed is None  # mutation dropped the CSR view
        warm = index.search_batch(data.queries, k=5, beam_width=16)
        assert index._packed is not packed_before
        # Tables depend only on query + quantizer: still cache hits.
        assert warm.table_cache_hits.all()

        # The packed route must equal a from-scratch sequential build.
        reference = StreamingIndex(
            quantizer, dim=data.base.shape[1], r=8, search_l=20, seed=0
        )
        for row in data.base[:140]:
            reference.insert(row)
        expected = reference.search_batch(data.queries, k=5, beam_width=16)
        assert_same_answers(expected, warm)

    def test_delete_does_not_invalidate_packed(self, setup):
        data, quantizer, _ = setup
        index = StreamingIndex(
            quantizer, dim=data.base.shape[1], r=8, search_l=20, seed=0
        )
        index.insert_batch(data.base[:60])
        index.search_batch(data.queries, k=5, beam_width=16)
        packed = index._packed
        assert packed is not None
        index.delete(3)  # tombstones do not touch adjacency
        assert index._packed is packed
        index.consolidate()  # edge inheritance does
        assert index._packed is None
        result = index.search_batch(data.queries, k=5, beam_width=16)
        assert not (result.ids == 3).any()


# ----------------------------------------------------------------------
# Serving paths: sharded fan-out and dynamic batching
# ----------------------------------------------------------------------


class TestServingPaths:
    def test_sharded_warm_equals_cold(self, setup):
        data, quantizer, _ = setup
        sharded = ShardedIndex.build(
            data.base,
            num_shards=2,
            factory=lambda rows: MemoryIndex(
                build_vamana(rows, r=8, search_l=20, seed=0),
                quantizer,
                rows,
            ),
        )
        with sharded:
            cold = sharded.search_batch(data.queries, k=5, beam_width=16)
            warm = sharded.search_batch(data.queries, k=5, beam_width=16)
            assert_same_answers(cold, warm)
            # Summed across shards: every shard hit on the warm pass.
            np.testing.assert_array_equal(
                warm.table_cache_hits,
                np.full(data.queries.shape[0], 2, dtype=np.int64),
            )
            status = sharded.engine_status()
            assert len(status) == 2
            assert all(
                row["table_cache"]["hits"] > 0 for row in status
            )

    def test_batcher_reports_cache_counters(self, setup):
        from repro.api import SearchRequest

        data, _, _ = setup
        index = make_index("memory", setup)
        with DynamicBatcher(
            index, k=5, beam_width=16, max_wait_ms=0.0
        ) as batcher:
            request = SearchRequest(
                queries=data.queries, k=5, beam_width=16
            )
            cold = batcher.search(request)
            warm = batcher.search(request)
        assert "table_cache_hits" in cold.counters
        assert "workspace_reused" in warm.counters
        assert warm.counters["table_cache_hits"].all()
        np.testing.assert_array_equal(cold.ids, warm.ids)
        np.testing.assert_array_equal(cold.distances, warm.distances)
        np.testing.assert_array_equal(cold.counts, warm.counts)

    def test_response_counters_include_telemetry(self, setup):
        from repro.api import SearchRequest, execute_request

        data, _, _ = setup
        index = make_index("memory", setup)
        request = SearchRequest(queries=data.queries, k=5, beam_width=16)
        execute_request(index, request)
        warm = execute_request(index, request)
        assert warm.counters["table_cache_hits"].all()
        assert "workspace_reused" in warm.counters


# ----------------------------------------------------------------------
# Profiling hooks
# ----------------------------------------------------------------------


class TestKernelProfile:
    def test_profile_collects_stage_timers(self, setup):
        data, _, _ = setup
        index = make_index("memory", setup)
        baseline = run_search("memory", index, data.queries)
        index.kernel_profile = KernelProfile()
        profiled = run_search("memory", index, data.queries)
        assert_same_answers(baseline, profiled)
        profile = index.kernel_profile
        assert profile.rounds > 0
        assert profile.calls == 1
        report = profile.report()
        for stage in ("gather", "score", "rank", "truncate"):
            assert profile.seconds[stage] >= 0.0
            assert stage in report


# ----------------------------------------------------------------------
# Satellite fixes: top_k copies, ADC dtype validation
# ----------------------------------------------------------------------


class TestTopKCopies:
    def test_batch_top_k_is_a_copy(self, setup):
        data, _, _ = setup
        index = make_index("memory", setup)
        batch = index.context.run(data.queries, 16, k=None)
        top = batch.top_k(3)
        assert top.ids.shape == (data.queries.shape[0], 3)
        original = batch.ids.copy()
        top.ids[:] = -7
        top.distances[:] = np.nan
        np.testing.assert_array_equal(batch.ids, original)

    def test_scalar_top_k_is_a_copy(self, setup):
        data, quantizer, graph = setup
        from repro.graphs import beam_search, exact_distance_fn

        result = beam_search(
            graph.adjacency,
            graph.entry_point,
            exact_distance_fn(data.base, data.queries[0]),
            16,
        )
        top = result.top_k(3)
        original = result.ids.copy()
        top.ids[:] = -7
        np.testing.assert_array_equal(result.ids, original)


class TestLookupTableDtypeValidation:
    @staticmethod
    def codebook():
        from repro.quantization.codebook import Codebook

        return Codebook(codewords=np.zeros((2, 4, 3)))

    def test_rejects_non_float_dtypes(self):
        book = self.codebook()
        with pytest.raises(ValueError, match="float32 or float64"):
            LookupTable.build(book, np.zeros(6), dtype=np.int32)
        with pytest.raises(ValueError, match="float32 or float64"):
            BatchLookupTable.build(
                book, np.zeros((1, 6)), dtype=np.float16
            )

    def test_accepts_both_float_widths(self):
        book = self.codebook()
        for dtype in (np.float32, np.float64):
            table = LookupTable.build(book, np.zeros(6), dtype=dtype)
            assert table.table.dtype == np.dtype(dtype)
