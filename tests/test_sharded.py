"""Sharded fan-out search: merge exactness, routing, and parity.

The shard merge is a pure selection over the union of per-shard
candidates — distances pass through untouched and ties break by
(distance, shard, within-shard rank) — so three properties are
testable exactly, with no tolerances:

* a single-shard :class:`ShardedIndex` is bitwise identical to the
  unsharded index it wraps, for every scenario (the merge is an
  identity transformation);
* with exhaustive beams every shard enumerates its whole partition, so
  the merged result *is* the exact ADC top-k over the full dataset;
* tie-breaking and thread fan-out are deterministic: repeated calls,
  threaded or not, return identical arrays.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load
from repro.graphs import build_vamana
from repro.index import (
    DiskIndex,
    FilteredIndex,
    L2RIndex,
    MemoryIndex,
    StreamingIndex,
)
from repro.quantization import ProductQuantizer
from repro.serving import ShardedIndex, partition_rows


@pytest.fixture(scope="module")
def setup():
    data = load("sift", n_base=240, n_queries=8, seed=5)
    quantizer = ProductQuantizer(8, 16, seed=0).fit(data.train)
    return data, quantizer


def build_memory(x, quantizer, **kwargs):
    return MemoryIndex(
        build_vamana(x, r=8, search_l=20, seed=0), quantizer, x, **kwargs
    )


def make_streaming(quantizer, dim):
    return StreamingIndex(quantizer, dim=dim, r=8, search_l=20, seed=0)


def assert_batches_equal(a, b, fields=()):
    np.testing.assert_array_equal(a.ids, b.ids)
    np.testing.assert_array_equal(a.distances, b.distances)
    np.testing.assert_array_equal(a.counts, b.counts)
    np.testing.assert_array_equal(a.hops, b.hops)
    np.testing.assert_array_equal(
        a.distance_computations, b.distance_computations
    )
    for name in fields:
        np.testing.assert_array_equal(
            getattr(a, name), getattr(b, name), err_msg=name
        )


class TestSingleShardParity:
    """One shard == the unsharded index, bitwise, on all five scenarios."""

    def test_memory(self, setup):
        data, quantizer = setup
        index = build_memory(data.base, quantizer)
        sharded = ShardedIndex([index], [np.arange(data.base.shape[0])])
        plain = index.search_batch(data.queries, k=10, beam_width=24)
        merged = sharded.search_batch(data.queries, k=10, beam_width=24)
        assert type(merged) is type(plain)
        assert_batches_equal(plain, merged)

    def test_hybrid(self, setup):
        data, quantizer = setup
        graph = build_vamana(data.base, r=8, search_l=20, seed=0)
        index = DiskIndex(graph, quantizer, data.base, io_width=2)
        plain = index.search_batch(data.queries, k=10, beam_width=24)
        sharded = ShardedIndex([index], [np.arange(data.base.shape[0])])
        merged = sharded.search_batch(data.queries, k=10, beam_width=24)
        assert_batches_equal(
            plain,
            merged,
            fields=("io_rounds", "page_reads", "simulated_io_us"),
        )

    def test_streaming(self, setup):
        data, quantizer = setup
        dim = data.base.shape[1]
        plain_index = make_streaming(quantizer, dim)
        plain_index.insert_batch(data.base[:80])
        sharded = ShardedIndex([make_streaming(quantizer, dim)])
        ids = sharded.insert_batch(data.base[:80])
        assert ids == list(range(80))
        plain = plain_index.search_batch(data.queries, k=5, beam_width=16)
        merged = sharded.search_batch(data.queries, k=5, beam_width=16)
        assert_batches_equal(plain, merged)

    def test_filtered(self, setup):
        data, quantizer = setup
        n = data.base.shape[0]
        labels = np.arange(n) % 3
        graph = build_vamana(data.base, r=8, search_l=20, seed=0)
        index = FilteredIndex(graph, quantizer, data.base, labels)
        qlabels = np.arange(len(data.queries)) % 3
        plain = index.search_batch(
            data.queries, labels=qlabels, k=5, beam_width=16
        )
        sharded = ShardedIndex([index], [np.arange(n)])
        merged = sharded.search_batch(
            data.queries, labels=qlabels, k=5, beam_width=16
        )
        assert_batches_equal(plain, merged, fields=("beam_widths_used",))

    def test_l2r(self, setup):
        data, quantizer = setup
        graph = build_vamana(data.base, r=8, search_l=20, seed=0)
        index = L2RIndex(
            graph,
            quantizer,
            data.base,
            rng=np.random.default_rng(0),
        )
        plain = index.search_batch(data.queries, k=10, beam_width=24)
        sharded = ShardedIndex([index], [np.arange(data.base.shape[0])])
        merged = sharded.search_batch(data.queries, k=10, beam_width=24)
        assert_batches_equal(plain, merged)

    def test_scalar_search_matches_batch_row(self, setup):
        data, quantizer = setup
        sharded = ShardedIndex.build(
            data.base, 3, lambda xs: build_memory(xs, quantizer)
        )
        batch = sharded.search_batch(data.queries, k=10, beam_width=24)
        scalar = sharded.search(data.queries[0], k=10, beam_width=24)
        row = batch.row(0)
        np.testing.assert_array_equal(scalar.ids, row.ids)
        np.testing.assert_array_equal(scalar.distances, row.distances)
        assert scalar.hops == row.hops


class TestMergeExactness:
    """Exhaustive-beam merges are the exact ADC top-k over all shards."""

    def adc_reference(self, quantizer, x, queries, k):
        """Brute-force ADC top-k distances (the merge's ground truth)."""
        codes = quantizer.encode(x)
        tables = quantizer.lookup_table_batch(queries)
        dists = np.stack(
            [
                tables.pair_distance(
                    np.full(x.shape[0], i), codes
                )
                for i in range(queries.shape[0])
            ]
        )
        return np.sort(dists, axis=1)[:, :k]

    def test_merge_matches_reference_merge(self, setup):
        """The argpartition merge == a naive sort-based reference merge.

        Bitwise, including ids: ties order by (distance, shard,
        within-shard rank) in both implementations.
        """
        data, quantizer = setup
        k, beam = 10, 48
        sharded = ShardedIndex.build(
            data.base, 4, lambda xs: build_memory(xs, quantizer)
        )
        merged = sharded.search_batch(data.queries, k=k, beam_width=beam)
        shard_results = [
            shard.search_batch(data.queries, k=k, beam_width=beam)
            for shard in sharded.shards
        ]
        for q in range(len(data.queries)):
            cands = []
            for s, result in enumerate(shard_results):
                gids = sharded._global_ids[s]
                for rank in range(int(result.counts[q])):
                    cands.append(
                        (
                            result.distances[q, rank],
                            s,
                            rank,
                            int(gids[result.ids[q, rank]]),
                        )
                    )
            cands.sort(key=lambda t: (t[0], t[1], t[2]))
            top = cands[:k]
            np.testing.assert_array_equal(
                merged.ids[q], [t[3] for t in top], err_msg=f"q{q} ids"
            )
            np.testing.assert_array_equal(
                merged.distances[q],
                [t[0] for t in top],
                err_msg=f"q{q} distances",
            )
        # Counters aggregate across shards.
        np.testing.assert_array_equal(
            merged.hops, np.sum([r.hops for r in shard_results], axis=0)
        )

    def test_single_vertex_shards_are_exact(self, setup):
        data, quantizer = setup
        x = data.base[:12]
        sharded = ShardedIndex.build(
            x, 12, lambda xs: build_memory(xs, quantizer)
        )
        assert sharded.shard_sizes() == [1] * 12
        result = sharded.search_batch(data.queries, k=3, beam_width=8)
        ref = self.adc_reference(quantizer, x, data.queries, 3)
        np.testing.assert_array_equal(result.distances, ref)
        assert (result.counts == 3).all()

    def test_k_larger_than_shard(self, setup):
        data, quantizer = setup
        x = data.base[:60]
        sharded = ShardedIndex.build(
            x, 6, lambda xs: build_memory(xs, quantizer)
        )
        result = sharded.search_batch(data.queries, k=16, beam_width=60)
        # Each shard holds only 10 vertices, so every shard contributes
        # fewer than k — the union still fills all 16 slots exactly.
        assert (result.counts == 16).all()
        np.testing.assert_array_equal(
            result.distances,
            self.adc_reference(quantizer, x, data.queries, 16),
        )
        for row in result.ids:
            assert np.unique(row).size == 16

    def test_k_larger_than_dataset_pads(self, setup):
        data, quantizer = setup
        x = data.base[:30]
        sharded = ShardedIndex.build(
            x, 3, lambda xs: build_memory(xs, quantizer)
        )
        result = sharded.search_batch(data.queries, k=40, beam_width=64)
        assert (result.counts == 30).all()
        assert (result.ids[:, 30:] == -1).all()
        assert np.isinf(result.distances[:, 30:]).all()
        assert (result.ids[:, :30] >= 0).all()

    def test_duplicate_distances_tie_break(self, setup):
        data, quantizer = setup
        # Shard 1 is an exact copy of shard 0: every candidate's ADC
        # distance appears twice across shards.
        half = data.base[:10]
        x = np.vstack([half, half])
        sharded = ShardedIndex.build(
            x, 2, lambda xs: build_memory(xs, quantizer)
        )
        assert sharded.shard_sizes() == [10, 10]
        result = sharded.search_batch(data.queries, k=10, beam_width=16)
        # The top-10 of the duplicated union holds the 5 best distances
        # twice each; within every tied pair the shard-0 twin must come
        # first (ids 0..9), immediately followed by its shard-1 copy
        # (same vector, global id + 10).
        for row_ids, row_d in zip(result.ids, result.distances):
            for j in range(0, 10, 2):
                assert row_ids[j] < 10
                assert row_ids[j + 1] == row_ids[j] + 10
                assert row_d[j] == row_d[j + 1]
        again = sharded.search_batch(data.queries, k=10, beam_width=16)
        np.testing.assert_array_equal(result.ids, again.ids)
        np.testing.assert_array_equal(result.distances, again.distances)

    def test_threaded_matches_sequential(self, setup):
        data, quantizer = setup

        def factory(xs):
            return build_memory(xs, quantizer)

        threaded = ShardedIndex.build(data.base, 4, factory)
        sequential = ShardedIndex.build(
            data.base, 4, factory, max_workers=1
        )
        a = threaded.search_batch(data.queries, k=10, beam_width=24)
        b = sequential.search_batch(data.queries, k=10, beam_width=24)
        assert_batches_equal(a, b)
        threaded.close()

    def test_empty_batch(self, setup):
        data, quantizer = setup
        sharded = ShardedIndex.build(
            data.base, 3, lambda xs: build_memory(xs, quantizer)
        )
        result = sharded.search_batch(
            np.empty((0, data.base.shape[1])), k=5, beam_width=16
        )
        assert result.ids.shape == (0, 5)
        assert result.counts.shape == (0,)


class TestStreamingRouting:
    def fresh(self, setup, num_shards):
        data, quantizer = setup
        dim = data.base.shape[1]
        return data, ShardedIndex(
            [make_streaming(quantizer, dim) for _ in range(num_shards)]
        )

    def test_least_loaded_routing_balances(self, setup):
        data, sharded = self.fresh(setup, 3)
        ids = sharded.insert_batch(data.base[:20])
        assert ids == list(range(20))
        assert sharded.shard_sizes() == [7, 7, 6]
        assert sharded.num_active == 20

    def test_empty_shard_is_harmless(self, setup):
        data, sharded = self.fresh(setup, 3)
        sharded.insert_batch(data.base[:2])
        assert sharded.shard_sizes() == [1, 1, 0]
        result = sharded.search_batch(data.queries, k=5, beam_width=8)
        assert (result.counts == 2).all()
        assert (result.ids[:, 2:] == -1).all()

    def test_delete_routes_to_owner(self, setup):
        data, sharded = self.fresh(setup, 3)
        sharded.insert_batch(data.base[:30])
        target = sharded.search(data.queries[0], k=1, beam_width=16)
        victim = int(target.ids[0])
        sharded.delete(victim)
        assert sharded.num_active == 29
        after = sharded.search(data.queries[0], k=10, beam_width=16)
        assert victim not in after.ids
        with pytest.raises(KeyError):
            sharded.delete(victim)  # already tombstoned on its shard
        with pytest.raises(KeyError):
            sharded.delete(10_000)

    def test_consolidate_sums_shards(self, setup):
        data, sharded = self.fresh(setup, 2)
        ids = sharded.insert_batch(data.base[:12])
        for g in ids[:4]:
            sharded.delete(g)
        assert sharded.consolidate() == 4
        result = sharded.search_batch(data.queries, k=8, beam_width=16)
        assert (result.counts == 8).all()
        for g in ids[:4]:
            assert g not in result.ids

    def test_inserts_after_static_build_rejected(self, setup):
        data, quantizer = setup
        sharded = ShardedIndex.build(
            data.base, 2, lambda xs: build_memory(xs, quantizer)
        )
        with pytest.raises(TypeError):
            sharded.insert_batch(data.base[:2])
        with pytest.raises(TypeError):
            sharded.delete(0)

    def test_mixed_insert_batches_stay_consistent(self, setup):
        data, sharded = self.fresh(setup, 2)
        first = sharded.insert_batch(data.base[:5])
        second = sharded.insert_batch(data.base[5:9])
        assert first + second == list(range(9))
        # Every global id must map to the vector it was assigned for.
        for g in range(9):
            shard, local = sharded._owner[g]
            np.testing.assert_array_equal(
                sharded.shards[shard]._vectors[local], data.base[g]
            )

    def test_partial_insert_failure_keeps_bookkeeping_coherent(
        self, setup
    ):
        """A shard failing mid-insert_batch must not desync the router.

        Shard sub-batches that succeeded before the failure stay fully
        recorded; the failed shard's rows are not recorded anywhere;
        and a follow-up insert assigns fresh, collision-free ids.
        """
        data, sharded = self.fresh(setup, 3)
        sharded.insert_batch(data.base[:6])  # balanced: 2 rows per shard

        boom = RuntimeError("injected shard failure")
        real_insert = sharded.shards[1].insert_batch

        def failing_insert(rows):
            raise boom

        sharded._shards[1].insert_batch = failing_insert
        try:
            with pytest.raises(RuntimeError, match="injected"):
                sharded.insert_batch(data.base[6:12])
        finally:
            sharded._shards[1].insert_batch = real_insert

        # Shard 0 ran before the failure and is recorded; shards 1/2
        # never mutated (2 is after the failing shard in the loop).
        sizes = sharded.shard_sizes()
        assert sizes[1] == 2 and sizes[2] == 2
        # Router maps exactly match shard contents: every recorded
        # global id dereferences to the vector it was assigned for.
        for gids in sharded._global_ids:
            for g in gids:
                shard, local = sharded._owner[int(g)]
                assert len(sharded.shards[shard]._vectors) > local
        recorded = {
            int(g) for gids in sharded._global_ids for g in gids
        }
        assert sharded.num_vertices == sum(sizes)
        # _next_global sits past every recorded id, so the next batch
        # cannot collide with anything recorded.
        assert sharded._next_global > max(recorded)
        fresh = sharded.insert_batch(data.base[12:15])
        assert not set(fresh) & recorded
        result = sharded.search_batch(data.queries, k=5, beam_width=16)
        assert (result.counts == 5).all()


class TestNonFiniteQueryRejection:
    """NaN/inf queries fail loudly at the boundary, not deep in the
    merge's boundary-tie reshape (see ISSUE 6: a NaN candidate makes
    ``pos.reshape(b, k)`` blow up with an opaque error)."""

    def test_plain_index_rejects_nan(self, setup):
        data, quantizer = setup
        index = build_memory(data.base, quantizer)
        bad = data.queries.copy()
        bad[0, 0] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            index.search_batch(bad, k=5, beam_width=16)

    def test_sharded_rejects_nan_and_inf(self, setup):
        data, quantizer = setup
        sharded = ShardedIndex.build(
            data.base, 2, lambda xs: build_memory(xs, quantizer)
        )
        for poison in (np.nan, np.inf, -np.inf):
            bad = data.queries.copy()
            bad[1, 3] = poison
            with pytest.raises(ValueError, match="non-finite"):
                sharded.search_batch(bad, k=5, beam_width=16)
        # The error names the offending row(s).
        bad = data.queries.copy()
        bad[2, 0] = np.nan
        with pytest.raises(ValueError, match=r"row\(s\) \[2\]"):
            sharded.search_batch(bad, k=5, beam_width=16)
        # And the index still works after the rejection.
        result = sharded.search_batch(data.queries, k=5, beam_width=16)
        assert (result.counts == 5).all()


class TestConstructionAndValidation:
    def test_partition_rows_contiguous(self):
        parts = partition_rows(10, 3)
        assert [p.tolist() for p in parts] == [
            [0, 1, 2, 3],
            [4, 5, 6],
            [7, 8, 9],
        ]

    def test_partition_rows_round_robin(self):
        parts = partition_rows(7, 3, strategy="round_robin")
        assert [p.tolist() for p in parts] == [[0, 3, 6], [1, 4], [2, 5]]

    def test_partition_rows_validation(self):
        with pytest.raises(ValueError):
            partition_rows(5, 0)
        with pytest.raises(ValueError):
            partition_rows(3, 4)
        with pytest.raises(ValueError):
            partition_rows(5, 2, strategy="hash")

    def test_round_robin_build(self, setup):
        data, quantizer = setup
        sharded = ShardedIndex.build(
            data.base,
            3,
            lambda xs: build_memory(xs, quantizer),
            strategy="round_robin",
        )
        result = sharded.search_batch(data.queries, k=5, beam_width=16)
        assert (result.counts == 5).all()
        assert result.ids.max() < data.base.shape[0]

    def test_row_arrays_partition_with_the_data(self, setup):
        data, quantizer = setup
        n = data.base.shape[0]
        labels = np.arange(n) % 4

        def factory(xs, labels):
            graph = build_vamana(xs, r=8, search_l=20, seed=0)
            return FilteredIndex(graph, quantizer, xs, labels)

        sharded = ShardedIndex.build(
            data.base, 3, factory, row_arrays={"labels": labels}
        )
        result = sharded.search_batch(
            data.queries, labels=2, k=5, beam_width=16
        )
        assert (result.counts == 5).all()
        # Returned global ids must actually carry the requested label.
        assert (labels[result.ids[result.ids >= 0]] == 2).all()

    def test_invalid_global_ids_rejected(self, setup):
        data, quantizer = setup
        index = build_memory(data.base[:10], quantizer)
        with pytest.raises(ValueError, match="id map"):
            ShardedIndex([index], [np.arange(5)])  # size mismatch
        with pytest.raises(ValueError):
            ShardedIndex([index], [np.array([0, 1, 1] + list(range(2, 9)))])
        with pytest.raises(ValueError):
            ShardedIndex([index], [np.arange(10) - 1])
        with pytest.raises(ValueError):
            ShardedIndex([])
        with pytest.raises(ValueError):
            ShardedIndex([index], [np.arange(10)], max_workers=0)

    def test_k_validation(self, setup):
        data, quantizer = setup
        sharded = ShardedIndex.build(
            data.base, 2, lambda xs: build_memory(xs, quantizer)
        )
        with pytest.raises(ValueError):
            sharded.search_batch(data.queries, k=0, beam_width=16)
