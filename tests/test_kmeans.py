"""Tests for the k-means clustering primitive."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.quantization import assign_to_centroids, kmeans, kmeans_plus_plus_init

RNG = np.random.default_rng(7)


def three_blobs(n_per: int = 50, d: int = 4, spread: float = 0.05):
    centers = np.array(
        [[5.0] * d, [-5.0] * d, [5.0] * (d // 2) + [-5.0] * (d - d // 2)]
    )
    points = np.concatenate(
        [c + spread * RNG.normal(size=(n_per, d)) for c in centers]
    )
    return points, centers


class TestKMeans:
    def test_recovers_well_separated_blobs(self):
        x, centers = three_blobs()
        result = kmeans(x, 3, rng=np.random.default_rng(0))
        # Each true center should be close to some learned centroid.
        for c in centers:
            d = ((result.centroids - c) ** 2).sum(axis=1).min()
            assert d < 0.1

    def test_inertia_decreases_with_k(self):
        x, _ = three_blobs()
        inertias = [
            kmeans(x, k, rng=np.random.default_rng(0)).inertia for k in (1, 2, 3, 6)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(inertias, inertias[1:]))

    def test_assignments_are_nearest(self):
        x, _ = three_blobs()
        result = kmeans(x, 4, rng=np.random.default_rng(1))
        assigned, _ = assign_to_centroids(x, result.centroids)
        np.testing.assert_array_equal(assigned, result.assignments)

    def test_k_equals_one(self):
        x = RNG.normal(size=(30, 3))
        result = kmeans(x, 1, rng=np.random.default_rng(0))
        np.testing.assert_allclose(result.centroids[0], x.mean(axis=0), atol=1e-9)

    def test_k_greater_than_n(self):
        x = RNG.normal(size=(4, 3))
        result = kmeans(x, 10, rng=np.random.default_rng(0))
        assert result.centroids.shape == (10, 3)
        assert result.inertia < 1e-12  # every point has a private centroid

    def test_explicit_init(self):
        x, centers = three_blobs()
        result = kmeans(x, 3, init=centers, rng=np.random.default_rng(0))
        assert result.inertia < 10.0

    def test_init_shape_validation(self):
        x = RNG.normal(size=(20, 3))
        with pytest.raises(ValueError):
            kmeans(x, 3, init=np.zeros((2, 3)))

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((0, 3)), 2)
        with pytest.raises(ValueError):
            kmeans(np.zeros((5, 3)), 0)
        with pytest.raises(ValueError):
            kmeans(np.zeros(5), 2)

    def test_duplicate_points(self):
        x = np.ones((50, 4))
        result = kmeans(x, 3, rng=np.random.default_rng(0))
        assert np.isfinite(result.centroids).all()
        assert result.inertia < 1e-12

    def test_empty_cluster_repair(self):
        # Two tight groups, ask for 4 clusters: at least one initial
        # centroid likely goes empty and must be re-seeded.
        x = np.concatenate([np.zeros((40, 2)), np.ones((40, 2)) * 10])
        result = kmeans(x, 4, rng=np.random.default_rng(3))
        assert np.isfinite(result.centroids).all()

    def test_kmeanspp_spreads_centroids(self):
        x, centers = three_blobs()
        init = kmeans_plus_plus_init(x, 3, np.random.default_rng(0))
        # Initial picks should land near distinct blobs.
        owners = {int(((centers - c) ** 2).sum(axis=1).argmin()) for c in init}
        assert len(owners) == 3


@settings(max_examples=15, deadline=None)
@given(
    arrays(
        np.float64,
        st.tuples(st.integers(8, 40), st.integers(2, 5)),
        elements=st.floats(-10, 10, allow_nan=False),
    ),
    st.integers(1, 5),
)
def test_property_inertia_nonnegative_and_assignment_valid(x, k):
    result = kmeans(x, k, rng=np.random.default_rng(0), max_iter=5)
    assert result.inertia >= 0.0
    assert result.assignments.min() >= 0
    assert result.assignments.max() < k
    assert result.centroids.shape == (k, x.shape[1])


@settings(max_examples=15, deadline=None)
@given(
    arrays(
        np.float64,
        st.tuples(st.integers(10, 30), st.integers(2, 4)),
        elements=st.floats(-5, 5, allow_nan=False),
    )
)
def test_property_more_iterations_never_hurt(x):
    short = kmeans(x, 3, max_iter=1, rng=np.random.default_rng(0))
    long = kmeans(x, 3, max_iter=20, rng=np.random.default_rng(0))
    assert long.inertia <= short.inertia + 1e-9
