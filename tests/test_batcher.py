"""Dynamic batcher: trigger behavior, shutdown semantics, correctness.

Timing-dependent assertions use generous margins (a trigger that
*should* fire within milliseconds is given seconds) so the suite stays
deterministic on loaded CI runners; the correctness assertions are
exact — batch composition cannot change any answer.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.datasets import load
from repro.graphs import build_vamana
from repro.index import MemoryIndex
from repro.quantization import ProductQuantizer
from repro.serving import DynamicBatcher, ShardedIndex


@pytest.fixture(scope="module")
def setup():
    data = load("sift", n_base=200, n_queries=8, seed=9)
    quantizer = ProductQuantizer(8, 16, seed=0).fit(data.train)
    graph = build_vamana(data.base, r=8, search_l=20, seed=0)
    index = MemoryIndex(graph, quantizer, data.base)
    return data, index


class TestCorrectness:
    def test_answers_match_direct_search_bitwise(self, setup):
        data, index = setup
        with DynamicBatcher(
            index, k=10, beam_width=24, max_batch_size=4, max_wait_ms=50
        ) as batcher:
            futures = [batcher.submit(q) for q in data.queries]
            rows = [f.result(timeout=30) for f in futures]
        for q, row in zip(data.queries, rows):
            direct = index.search(q, k=10, beam_width=24)
            np.testing.assert_array_equal(row.ids, direct.ids)
            np.testing.assert_array_equal(row.distances, direct.distances)
            assert row.hops == direct.hops
            assert row.distance_computations == direct.distance_computations

    def test_over_sharded_index(self, setup):
        data, _ = setup
        quantizer = ProductQuantizer(8, 16, seed=0).fit(data.train)
        sharded = ShardedIndex.build(
            data.base,
            3,
            lambda xs: MemoryIndex(
                build_vamana(xs, r=8, search_l=20, seed=0), quantizer, xs
            ),
        )
        with DynamicBatcher(
            sharded, k=5, beam_width=16, max_batch_size=8, max_wait_ms=20
        ) as batcher:
            futures = [batcher.submit(q) for q in data.queries]
            rows = [f.result(timeout=30) for f in futures]
        direct = sharded.search_batch(data.queries, k=5, beam_width=16)
        for i, row in enumerate(rows):
            np.testing.assert_array_equal(row.ids, direct.row(i).ids)

    def test_stats_account_for_every_request(self, setup):
        data, index = setup
        batcher = DynamicBatcher(
            index, max_batch_size=3, max_wait_ms=10
        )
        futures = [batcher.submit(q) for q in data.queries]
        for f in futures:
            f.result(timeout=30)
        stats = batcher.close()
        assert stats.requests == len(data.queries)
        assert stats.answered == len(data.queries)
        assert sum(stats.recent_batch_sizes) == len(data.queries)
        assert (
            stats.size_triggered
            + stats.deadline_triggered
            + stats.flush_triggered
            == stats.batches
        )


class TestTriggers:
    def test_size_trigger_dispatches_full_batches(self, setup):
        data, index = setup
        # The deadline is far away: only the size trigger can fire.
        with DynamicBatcher(
            index, max_batch_size=4, max_wait_ms=60_000
        ) as batcher:
            futures = [batcher.submit(q) for q in data.queries]
            for f in futures:
                f.result(timeout=30)
        assert list(batcher.stats.recent_batch_sizes) == [4, 4]
        assert batcher.stats.size_triggered == 2
        assert batcher.stats.deadline_triggered == 0

    def test_deadline_trigger_fires_for_partial_batches(self, setup):
        data, index = setup
        # Submit fewer than max_batch_size: only the deadline can fire.
        with DynamicBatcher(
            index, max_batch_size=100, max_wait_ms=30
        ) as batcher:
            futures = [batcher.submit(q) for q in data.queries[:3]]
            start = time.perf_counter()
            for f in futures:
                f.result(timeout=30)
            waited = time.perf_counter() - start
        assert batcher.stats.deadline_triggered >= 1
        assert batcher.stats.answered == 3
        assert waited < 20  # resolved far before any 100-size batch

    def test_zero_wait_is_greedy(self, setup):
        data, index = setup
        with DynamicBatcher(
            index, max_batch_size=100, max_wait_ms=0
        ) as batcher:
            futures = [batcher.submit(q) for q in data.queries]
            for f in futures:
                f.result(timeout=30)
        stats = batcher.stats
        # No waiting: every batch is whatever was queued at dispatch
        # time — sizes are racy but accounting must still add up.
        assert stats.answered == len(data.queries)
        assert stats.batches >= 1


class TestShutdown:
    def test_close_flushes_in_flight_requests(self, setup):
        data, index = setup
        # A far deadline and an unreachable size: without the flush,
        # these requests would sit in the queue for a minute.
        batcher = DynamicBatcher(
            index, max_batch_size=100, max_wait_ms=60_000
        )
        futures = [batcher.submit(q) for q in data.queries]
        stats = batcher.close(flush=True, timeout=30)
        assert all(f.done() and not f.cancelled() for f in futures)
        assert stats.answered == len(data.queries)
        assert stats.flush_triggered >= 1
        direct = index.search(data.queries[0], k=10, beam_width=32)
        np.testing.assert_array_equal(
            futures[0].result().ids, direct.ids
        )

    def test_close_flushes_even_if_worker_never_started(self, setup):
        data, index = setup
        batcher = DynamicBatcher(
            index, max_batch_size=100, max_wait_ms=60_000, start=False
        )
        futures = [batcher.submit(q) for q in data.queries[:3]]
        stats = batcher.close(flush=True, timeout=30)
        assert stats.answered == 3
        direct = index.search(data.queries[0], k=10, beam_width=32)
        np.testing.assert_array_equal(futures[0].result().ids, direct.ids)

    def test_close_without_flush_cancels_unclaimed(self, setup):
        data, index = setup
        # Worker never started: everything is still queued, so a
        # no-flush close must cancel every future deterministically.
        batcher = DynamicBatcher(
            index, max_batch_size=100, max_wait_ms=60_000, start=False
        )
        futures = [batcher.submit(q) for q in data.queries]
        batcher.close(flush=False)
        assert all(f.cancelled() for f in futures)
        assert batcher.stats.answered == 0

    def test_submit_after_close_raises(self, setup):
        data, index = setup
        batcher = DynamicBatcher(index)
        batcher.close()
        with pytest.raises(RuntimeError):
            batcher.submit(data.queries[0])
        with pytest.raises(RuntimeError):
            batcher.start()

    def test_close_is_idempotent(self, setup):
        data, index = setup
        batcher = DynamicBatcher(index)
        batcher.close()
        batcher.close()

    def test_concurrent_submitters(self, setup):
        data, index = setup
        results = {}
        with DynamicBatcher(
            index, max_batch_size=8, max_wait_ms=20
        ) as batcher:

            def client(i):
                future = batcher.submit(data.queries[i % 8])
                results[i] = future.result(timeout=30)

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(16)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert len(results) == 16
        for i, row in results.items():
            direct = index.search(data.queries[i % 8], k=10, beam_width=32)
            np.testing.assert_array_equal(row.ids, direct.ids)


class TestErrorsAndValidation:
    def test_search_errors_propagate_to_futures(self, setup):
        data, _ = setup

        class ExplodingIndex:
            def search_batch(self, queries, k, beam_width):
                raise ValueError("boom")

        with DynamicBatcher(
            ExplodingIndex(), max_batch_size=4, max_wait_ms=10
        ) as batcher:
            futures = [batcher.submit(q) for q in data.queries[:4]]
            for f in futures:
                with pytest.raises(ValueError, match="boom"):
                    f.result(timeout=30)

    def test_ragged_queries_fail_the_batch_not_the_worker(self, setup):
        data, index = setup
        # A mis-dimensioned query makes np.stack raise before the index
        # is even called; the batch's futures must carry the error and
        # the worker must survive to answer later requests.
        with DynamicBatcher(
            index, max_batch_size=2, max_wait_ms=60_000
        ) as batcher:
            bad = [
                batcher.submit(data.queries[0]),
                batcher.submit(data.queries[1][:-3]),
            ]
            for f in bad:
                with pytest.raises(ValueError):
                    f.result(timeout=30)
            good = [
                batcher.submit(data.queries[2]),
                batcher.submit(data.queries[3]),
            ]
            rows = [f.result(timeout=30) for f in good]
        direct = index.search(data.queries[2], k=10, beam_width=32)
        np.testing.assert_array_equal(rows[0].ids, direct.ids)

    def test_constructor_validation(self, setup):
        _, index = setup
        with pytest.raises(ValueError):
            DynamicBatcher(index, max_batch_size=0)
        with pytest.raises(ValueError):
            DynamicBatcher(index, max_wait_ms=-1.0)

    def test_non_finite_query_rejected_at_submit(self, setup):
        data, index = setup
        # Rejection happens at submit, in the poisoned caller's frame —
        # a NaN query must never reach a micro-batch where it would
        # fail the innocent requests batched alongside it.
        with DynamicBatcher(
            index, max_batch_size=2, max_wait_ms=60_000
        ) as batcher:
            good_before = batcher.submit(data.queries[0])
            with pytest.raises(ValueError, match="non-finite"):
                batcher.submit(np.full_like(data.queries[1], np.nan))
            good_after = batcher.submit(data.queries[1])
            rows = [
                f.result(timeout=30) for f in (good_before, good_after)
            ]
        for row, q in zip(rows, data.queries[:2]):
            direct = index.search(q, k=10, beam_width=32)
            np.testing.assert_array_equal(row.ids, direct.ids)
