"""Tests for library extensions: serialization, SDC search mode,
networkx export, and additional cross-cutting property tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RPQ, RPQTrainingConfig
from repro.datasets import compute_ground_truth, load
from repro.graphs import beam_search, build_vamana, exact_distance_fn
from repro.index import MemoryIndex
from repro.metrics import recall_at_k
from repro.quantization import (
    LinkAndCodeQuantizer,
    OptimizedProductQuantizer,
    ProductQuantizer,
    load_quantizer,
    save_quantizer,
)

RNG = np.random.default_rng(81)


def clustered(n=300, d=16, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=4.0, size=(6, d))
    return centers[rng.integers(6, size=n)] + 0.3 * rng.normal(size=(n, d))


class TestSerialization:
    def roundtrip(self, quantizer, tmp_path, x):
        path = tmp_path / "model.npz"
        save_quantizer(quantizer, path)
        loaded = load_quantizer(path)
        np.testing.assert_array_equal(
            quantizer.encode(x[:20]), loaded.encode(x[:20])
        )
        np.testing.assert_allclose(
            quantizer.lookup_table(x[0]).table,
            loaded.lookup_table(x[0]).table,
            atol=1e-12,
        )
        return loaded

    def test_pq_roundtrip(self, tmp_path):
        x = clustered()
        self.roundtrip(ProductQuantizer(4, 16, seed=0).fit(x), tmp_path, x)

    def test_opq_roundtrip(self, tmp_path):
        x = clustered()
        self.roundtrip(
            OptimizedProductQuantizer(4, 16, opq_iter=3, seed=0).fit(x),
            tmp_path,
            x,
        )

    def test_lnc_roundtrip(self, tmp_path):
        x = clustered()
        self.roundtrip(
            LinkAndCodeQuantizer(4, 16, n_sq=2, seed=0).fit(x), tmp_path, x
        )

    def test_rpq_roundtrip(self, tmp_path):
        x = clustered(n=250, d=8)
        graph = build_vamana(x, r=8, search_l=20, seed=0)
        config = RPQTrainingConfig(
            epochs=1, num_triplets=32, num_queries=3, records_per_query=3,
            batch_triplets=16, batch_records=4, beam_width=6, seed=0,
        )
        rpq = RPQ(2, 8, config=config, seed=0).fit(x, graph)
        loaded = self.roundtrip(rpq.quantizer, tmp_path, x)
        np.testing.assert_allclose(loaded.rotation, rpq.quantizer.rotation)

    def test_unfitted_raises(self, tmp_path):
        with pytest.raises(ValueError):
            save_quantizer(ProductQuantizer(4, 16), tmp_path / "x.npz")

    def test_unsupported_type_raises(self, tmp_path):
        class Fake:
            codebook = ProductQuantizer(2, 4, seed=0).fit(clustered(d=4)).codebook

        with pytest.raises(TypeError):
            save_quantizer(Fake(), tmp_path / "x.npz")


class TestSDCMode:
    def test_sdc_index_searches(self):
        data = load("ukbench", n_base=400, n_queries=12, seed=0)
        graph = build_vamana(data.base, r=10, search_l=24, seed=0)
        quantizer = ProductQuantizer(8, 32, seed=0).fit(data.train)
        gt = compute_ground_truth(data.base, data.queries, k=10)

        adc = MemoryIndex(graph, quantizer, data.base, distance_mode="adc")
        sdc = MemoryIndex(graph, quantizer, data.base, distance_mode="sdc")
        r_adc = recall_at_k(
            [adc.search(q, k=10, beam_width=48).ids for q in data.queries], gt.ids
        )
        r_sdc = recall_at_k(
            [sdc.search(q, k=10, beam_width=48).ids for q in data.queries], gt.ids
        )
        # Paper §3.1: ADC yields lower distance error, hence >= recall.
        assert r_adc >= r_sdc - 0.05
        assert r_sdc > 0.2

    def test_invalid_mode(self):
        data = load("ukbench", n_base=100, n_queries=5, seed=0)
        graph = build_vamana(data.base, r=8, search_l=16, seed=0)
        quantizer = ProductQuantizer(4, 8, seed=0).fit(data.train)
        with pytest.raises(ValueError):
            MemoryIndex(graph, quantizer, data.base, distance_mode="exact")


class TestNetworkxExport:
    def test_export_structure(self):
        x = clustered(n=120, d=8)
        graph = build_vamana(x, r=8, search_l=16, seed=0)
        nx_graph = graph.to_networkx()
        assert nx_graph.number_of_nodes() == graph.num_vertices
        assert nx_graph.number_of_edges() == graph.num_edges
        for v in range(graph.num_vertices):
            assert set(nx_graph.successors(v)) == set(
                int(u) for u in graph.neighbors(v)
            )

    def test_export_connectivity_agrees(self):
        import networkx as nx

        x = clustered(n=100, d=8)
        graph = build_vamana(x, r=8, search_l=16, seed=0)
        nx_graph = graph.to_networkx()
        reachable = set(nx.descendants(nx_graph, graph.entry_point))
        reachable.add(graph.entry_point)
        assert graph.is_connected_from_entry() == (
            len(reachable) == graph.num_vertices
        )


class TestSearchProperties:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_beam_results_sorted_and_unique(self, seed):
        x = np.random.default_rng(seed).normal(size=(80, 6))
        graph = build_vamana(x, r=8, search_l=16, seed=seed)
        q = np.random.default_rng(seed + 1).normal(size=6)
        res = beam_search(
            graph.adjacency, graph.entry_point, exact_distance_fn(x, q), 12
        )
        assert (np.diff(res.distances) >= -1e-12).all()
        assert len(set(res.ids.tolist())) == len(res.ids)

    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 10_000))
    def test_full_beam_on_connected_graph_is_exhaustive(self, seed):
        # With beam width >= n, beam search visits the whole connected
        # component and finds the exact nearest neighbor.
        x = np.random.default_rng(seed).normal(size=(50, 4))
        graph = build_vamana(x, r=6, search_l=12, seed=seed)
        if not graph.is_connected_from_entry():
            return
        q = np.random.default_rng(seed + 7).normal(size=4)
        res = beam_search(
            graph.adjacency, graph.entry_point, exact_distance_fn(x, q), 50
        )
        true_best = int(((x - q) ** 2).sum(axis=1).argmin())
        assert res.ids[0] == true_best
