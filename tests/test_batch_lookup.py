"""Regression tests for the batched ADC table build.

``BatchLookupTable.build`` must reproduce, for every query in the
batch, the brute-force per-chunk squared distances to every codeword —
and match the scalar ``LookupTable.build`` bitwise (both reduce over
the sub-dimension axis in the same order).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.quantization import BatchLookupTable, LookupTable
from repro.quantization.codebook import Codebook

RNG = np.random.default_rng(17)


def random_codebook(m=4, k=8, d_sub=5):
    return Codebook(codewords=RNG.normal(size=(m, k, d_sub)))


def brute_force_table(codebook, query):
    """Per-chunk distances computed the slow, obvious way."""
    m, k, d_sub = codebook.codewords.shape
    table = np.zeros((m, k))
    for j in range(m):
        sub_q = query[j * d_sub : (j + 1) * d_sub]
        for c in range(k):
            diff = sub_q - codebook.codewords[j, c]
            table[j, c] = float(np.dot(diff, diff))
    return table


class TestBuildBatchRegression:
    @pytest.mark.parametrize("m,k,d_sub", [(2, 4, 3), (4, 8, 5), (8, 16, 2)])
    def test_against_brute_force(self, m, k, d_sub):
        codebook = random_codebook(m, k, d_sub)
        queries = RNG.normal(size=(6, m * d_sub))
        tables = BatchLookupTable.build(codebook, queries)
        assert tables.tables.shape == (6, m, k)
        for b in range(6):
            np.testing.assert_allclose(
                tables.tables[b],
                brute_force_table(codebook, queries[b]),
                rtol=1e-12,
                atol=1e-12,
            )

    def test_bitwise_matches_scalar_build(self):
        codebook = random_codebook()
        queries = RNG.normal(size=(9, codebook.dim))
        tables = BatchLookupTable.build(codebook, queries)
        for b in range(9):
            single = LookupTable.build(codebook, queries[b])
            np.testing.assert_array_equal(tables.tables[b], single.table)

    def test_table_for_view(self):
        codebook = random_codebook()
        queries = RNG.normal(size=(3, codebook.dim))
        tables = BatchLookupTable.build(codebook, queries)
        view = tables.table_for(1)
        np.testing.assert_array_equal(view.table, tables.tables[1])
        assert view.num_chunks == tables.num_chunks

    def test_dim_mismatch_rejected(self):
        codebook = random_codebook()
        with pytest.raises(ValueError):
            BatchLookupTable.build(
                codebook, RNG.normal(size=(2, codebook.dim + 1))
            )


class TestBatchDistances:
    def test_distance_matrix_matches_scalar(self):
        codebook = random_codebook(m=4, k=8, d_sub=3)
        queries = RNG.normal(size=(5, codebook.dim))
        codes = RNG.integers(0, 8, size=(20, 4))
        tables = BatchLookupTable.build(codebook, queries)
        matrix = tables.distance(codes)
        assert matrix.shape == (5, 20)
        for b in range(5):
            scalar = LookupTable.build(codebook, queries[b]).distance(codes)
            np.testing.assert_array_equal(matrix[b], scalar)

    def test_pair_distance_matches_scalar(self):
        codebook = random_codebook(m=4, k=8, d_sub=3)
        queries = RNG.normal(size=(5, codebook.dim))
        codes = RNG.integers(0, 8, size=(12, 4))
        qidx = RNG.integers(0, 5, size=12)
        tables = BatchLookupTable.build(codebook, queries)
        paired = tables.pair_distance(qidx, codes)
        for p in range(12):
            scalar = LookupTable.build(codebook, queries[qidx[p]]).distance(
                codes[p]
            )
            assert paired[p] == scalar

    def test_pair_distance_shape_checks(self):
        codebook = random_codebook(m=4, k=8, d_sub=3)
        tables = BatchLookupTable.build(
            codebook, RNG.normal(size=(3, codebook.dim))
        )
        with pytest.raises(ValueError):
            tables.pair_distance(
                np.array([0, 1]), RNG.integers(0, 8, size=(3, 4))
            )
        with pytest.raises(ValueError):
            tables.distance(RNG.integers(0, 8, size=(3, 5)))

    def test_float32_build(self):
        codebook = random_codebook()
        queries = RNG.normal(size=(4, codebook.dim))
        t32 = BatchLookupTable.build(codebook, queries, dtype=np.float32)
        t64 = BatchLookupTable.build(codebook, queries)
        assert t32.tables.dtype == np.float32
        np.testing.assert_allclose(t32.tables, t64.tables, rtol=1e-5)
