"""The typed request/response surface: uniform across every scenario,
bitwise identical to the legacy ``search``/``search_batch`` signatures.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import SearchRequest, SearchResponse, execute_request
from repro.datasets import load
from repro.graphs import build_vamana
from repro.index import (
    DiskIndex,
    FilteredIndex,
    L2RIndex,
    MemoryIndex,
    StreamingIndex,
)
from repro.quantization import ProductQuantizer
from repro.serving import DynamicBatcher, ShardedIndex, partition_rows


@pytest.fixture(scope="module")
def setup():
    data = load("sift", n_base=240, n_queries=8, seed=5)
    quantizer = ProductQuantizer(8, 16, seed=0).fit(data.train)
    graph = build_vamana(data.base, r=8, search_l=20, seed=0)
    return data, quantizer, graph


def build_all(setup):
    data, quantizer, graph = setup
    x = data.base
    streaming = StreamingIndex(quantizer, dim=x.shape[1], r=8, search_l=20)
    streaming.insert_batch(x)
    labels = np.arange(x.shape[0]) % 3
    return {
        "memory": MemoryIndex(graph, quantizer, x),
        "hybrid": DiskIndex(graph, quantizer, x, io_width=2),
        "l2r": L2RIndex(graph, quantizer, x, rng=np.random.default_rng(0)),
        "streaming": streaming,
        "filtered": FilteredIndex(graph, quantizer, x, labels),
    }


# Engine-amortizer telemetry (cache/pool warmth) varies between the
# two executions being compared; answers stay bitwise identical.
VOLATILE_COUNTERS = {"table_cache_hits", "workspace_reused"}


def assert_response_matches_batch(response, batch):
    import dataclasses

    np.testing.assert_array_equal(response.ids, batch.ids)
    np.testing.assert_array_equal(response.distances, batch.distances)
    np.testing.assert_array_equal(response.counts, batch.counts)
    for field in dataclasses.fields(batch):
        if field.name in ("ids", "distances", "counts"):
            continue
        if field.name in VOLATILE_COUNTERS:
            assert field.name in response.counters
            continue
        np.testing.assert_array_equal(
            response.counters[field.name], getattr(batch, field.name)
        )


# ----------------------------------------------------------------------
# Request validation
# ----------------------------------------------------------------------


def test_request_normalizes_queries():
    request = SearchRequest(queries=np.zeros(16))
    assert request.query_matrix.shape == (1, 16)
    assert request.num_queries == 1


def test_request_rejects_bad_shapes_and_params():
    with pytest.raises(ValueError, match="queries"):
        SearchRequest(queries=np.zeros((2, 3, 4)))
    with pytest.raises(ValueError, match="k"):
        SearchRequest(queries=np.zeros(4), k=0)
    with pytest.raises(ValueError, match="beam_width"):
        SearchRequest(queries=np.zeros(4), beam_width=0)


def test_request_rejects_non_finite_queries():
    # NaN distances poison every downstream comparison (the sharded
    # merge's tie selection breaks with an opaque reshape error), so
    # the typed boundary rejects them with a clear message.
    bad = np.zeros((3, 4))
    bad[1, 2] = np.nan
    with pytest.raises(ValueError, match="non-finite"):
        SearchRequest(queries=bad)
    with pytest.raises(ValueError, match=r"row\(s\) \[1\]"):
        SearchRequest(queries=bad)
    with pytest.raises(ValueError, match="non-finite"):
        SearchRequest(queries=np.array([0.0, np.inf, 1.0]))


def test_request_rejects_scalar_queries():
    # A 0-dim scalar used to slip through, become a (1, 1) matrix via
    # atleast_2d, and fail much later with a confusing dim mismatch.
    with pytest.raises(ValueError, match="queries"):
        SearchRequest(queries=np.float64(3.0))
    with pytest.raises(ValueError, match="queries"):
        SearchRequest(queries=3.0)


def test_response_row_helpers():
    response = SearchResponse(
        ids=np.array([[3, 5, -1]]),
        distances=np.array([[0.5, 1.0, np.inf]]),
        counts=np.array([2]),
        counters={"hops": np.array([7])},
    )
    np.testing.assert_array_equal(response.row_ids(0), [3, 5])
    np.testing.assert_array_equal(response.row_distances(0), [0.5, 1.0])
    assert response.total("hops") == 7.0
    assert [list(ids) for ids in response] == [[3, 5]]


# ----------------------------------------------------------------------
# Bitwise parity: request path vs legacy signatures
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "name", ["memory", "hybrid", "l2r", "streaming", "filtered"]
)
def test_request_matches_legacy_search_batch(setup, name):
    data, _, _ = setup
    index = build_all(setup)[name]
    if name == "filtered":
        labels = np.arange(data.queries.shape[0]) % 3
        request = SearchRequest(
            queries=data.queries, k=5, beam_width=16, labels=labels
        )
        legacy = index.search_batch(
            data.queries, labels, k=5, beam_width=16
        )
    else:
        request = SearchRequest(queries=data.queries, k=5, beam_width=16)
        legacy = index.search_batch(data.queries, k=5, beam_width=16)
    assert_response_matches_batch(index.search(request), legacy)


@pytest.mark.parametrize("name", ["memory", "filtered"])
def test_request_matches_legacy_scalar_search(setup, name):
    data, _, _ = setup
    index = build_all(setup)[name]
    query = data.queries[0]
    if name == "filtered":
        request = SearchRequest(
            queries=query, k=5, beam_width=16, labels=1
        )
        legacy = index.search(query, 1, k=5, beam_width=16)
    else:
        request = SearchRequest(queries=query, k=5, beam_width=16)
        legacy = index.search(query, k=5, beam_width=16)
    response = index.search(request)
    np.testing.assert_array_equal(response.row_ids(0), legacy.ids)
    np.testing.assert_array_equal(response.row_distances(0), legacy.distances)
    assert int(response.hops[0]) == legacy.hops


def test_request_on_sharded_matches_legacy(setup):
    data, quantizer, _ = setup
    x = data.base
    parts = partition_rows(x.shape[0], 3)
    shards = [
        MemoryIndex(
            build_vamana(x[idx], r=8, search_l=20, seed=0), quantizer, x[idx]
        )
        for idx in parts
    ]
    sharded = ShardedIndex(shards, global_ids=parts)
    request = SearchRequest(queries=data.queries, k=5, beam_width=16)
    legacy = sharded.search_batch(data.queries, k=5, beam_width=16)
    assert_response_matches_batch(sharded.search(request), legacy)


def test_request_through_batcher_matches_direct(setup):
    data, quantizer, graph = setup
    index = MemoryIndex(graph, quantizer, data.base)
    request = SearchRequest(queries=data.queries, k=5, beam_width=16)
    direct = index.search(request)
    with DynamicBatcher(index, k=5, beam_width=16, max_batch_size=4) as b:
        served = b.search(request)
    np.testing.assert_array_equal(served.ids, direct.ids)
    np.testing.assert_array_equal(served.distances, direct.distances)
    np.testing.assert_array_equal(served.counts, direct.counts)
    np.testing.assert_array_equal(served.hops, direct.hops)


def test_batcher_filtered_counters_use_uniform_names(setup):
    data, quantizer, graph = setup
    labels = np.arange(data.base.shape[0]) % 3
    index = FilteredIndex(graph, quantizer, data.base, labels)
    request = SearchRequest(
        queries=data.queries, k=5, beam_width=16, labels=1
    )
    direct = index.search(request)
    with DynamicBatcher(
        index, k=5, beam_width=16, search_kwargs={"labels": 1}
    ) as b:
        served = b.search(
            SearchRequest(queries=data.queries, k=5, beam_width=16)
        )
    # Scenario counters keep uniform names; the batcher additionally
    # stamps its per-request timeline (enqueue/dequeue/complete) so
    # queue wait is separable from kernel time downstream.
    timeline = {
        "batcher_enqueue_s",
        "batcher_dequeue_s",
        "batcher_complete_s",
    }
    assert set(served.counters) == set(direct.counters) | timeline
    np.testing.assert_array_equal(
        served.counters["beam_widths_used"],
        direct.counters["beam_widths_used"],
    )


def test_batcher_rejects_mismatched_request(setup):
    data, quantizer, graph = setup
    index = MemoryIndex(graph, quantizer, data.base)
    with DynamicBatcher(index, k=5, beam_width=16) as b:
        with pytest.raises(ValueError, match="fixed"):
            b.search(SearchRequest(queries=data.queries, k=7, beam_width=16))
        with pytest.raises(ValueError, match="labels"):
            b.search(
                SearchRequest(
                    queries=data.queries, k=5, beam_width=16, labels=1
                )
            )


# ----------------------------------------------------------------------
# Label uniformity (the old filtered-search asymmetry)
# ----------------------------------------------------------------------


def test_labels_on_non_filtered_index_raise_value_error(setup):
    data, _, _ = setup
    indexes = build_all(setup)
    request = SearchRequest(queries=data.queries, labels=1)
    for name in ("memory", "hybrid", "l2r", "streaming"):
        with pytest.raises(ValueError, match="not a filtered"):
            indexes[name].search(request)


def test_max_beam_width_on_non_filtered_raises_value_error(setup):
    data, _, _ = setup
    index = build_all(setup)["memory"]
    with pytest.raises(ValueError, match="max_beam_width"):
        index.search(
            SearchRequest(queries=data.queries, max_beam_width=64)
        )


def test_filtered_without_labels_raises_value_error(setup):
    data, _, _ = setup
    index = build_all(setup)["filtered"]
    with pytest.raises(ValueError, match="requires request.labels"):
        index.search(SearchRequest(queries=data.queries))
    with pytest.raises(ValueError, match="target label"):
        index.search(data.queries[0])
    with pytest.raises(ValueError, match="target labels"):
        index.search_batch(data.queries)


def test_labels_on_non_filtered_sharded_raise_value_error(setup):
    data, quantizer, _ = setup
    x = data.base
    parts = partition_rows(x.shape[0], 2)
    sharded = ShardedIndex(
        [
            MemoryIndex(
                build_vamana(x[idx], r=8, search_l=20, seed=0),
                quantizer,
                x[idx],
            )
            for idx in parts
        ],
        global_ids=parts,
    )
    with pytest.raises(ValueError, match="not filtered"):
        sharded.search_batch(data.queries, k=5, beam_width=16, labels=1)
    with pytest.raises(ValueError, match="filtered"):
        sharded.search(SearchRequest(queries=data.queries, labels=1))


def test_max_beam_width_passes_through(setup):
    data, _, _ = setup
    index = build_all(setup)["filtered"]
    request = SearchRequest(
        queries=data.queries, k=5, beam_width=8, labels=2, max_beam_width=64
    )
    legacy = index.search_batch(
        data.queries, 2, k=5, beam_width=8, max_beam_width=64
    )
    assert_response_matches_batch(index.search(request), legacy)
    assert execute_request(index, request).counters[
        "beam_widths_used"
    ].max() <= 64


# ----------------------------------------------------------------------
# B=0 requests: the empty batch flows through every typed surface
# ----------------------------------------------------------------------


def empty_request(dim, k=5):
    return SearchRequest(queries=np.empty((0, dim)), k=k, beam_width=16)


def test_empty_request_on_plain_index(setup):
    data, quantizer, graph = setup
    index = MemoryIndex(graph, quantizer, data.base)
    response = index.search(empty_request(data.base.shape[1]))
    assert response.num_queries == 0
    assert response.ids.shape == (0, 5)
    assert response.distances.shape == (0, 5)
    assert response.counts.shape == (0,)
    assert response.hops.shape == (0,)


def test_empty_request_on_sharded_index(setup):
    data, quantizer, _ = setup
    x = data.base
    parts = partition_rows(x.shape[0], 3)
    sharded = ShardedIndex(
        [
            MemoryIndex(
                build_vamana(x[idx], r=8, search_l=20, seed=0),
                quantizer,
                x[idx],
            )
            for idx in parts
        ],
        global_ids=parts,
    )
    response = sharded.search(empty_request(x.shape[1]))
    assert response.num_queries == 0
    assert response.ids.shape == (0, 5)
    assert response.counts.shape == (0,)
    assert response.hops.shape == (0,)


def test_empty_request_through_batcher(setup):
    data, quantizer, graph = setup
    index = MemoryIndex(graph, quantizer, data.base)
    with DynamicBatcher(index, k=5, beam_width=16, max_batch_size=4) as b:
        response = b.search(empty_request(data.base.shape[1]))
    assert response.num_queries == 0
    assert response.ids.shape == (0, 5)
    assert response.distances.shape == (0, 5)
    assert response.counts.shape == (0,)
