"""End-to-end integration tests: train -> freeze -> index -> search.

These exercise the full paper pipeline on a small dataset and assert
the headline *qualitative* claims:

1. RPQ's quantized search reaches recall at least on par with vanilla
   PQ at equal beam width (in-memory scenario);
2. the hybrid (rerank) scenario reaches near-exact recall;
3. RPQ's learned rotation balances dimension variance (Fig. 4's effect).
"""

from __future__ import annotations

import pytest

from repro.core import RPQ, RPQTrainingConfig, chunk_balance_score, dimension_value_profile
from repro.datasets import compute_ground_truth, load
from repro.graphs import build_hnsw, build_nsg, build_vamana
from repro.index import DiskIndex, MemoryIndex
from repro.metrics import recall_at_k
from repro.quantization import ProductQuantizer

# End-to-end RPQ training + index builds: the slowest suite in the
# tree.  Runs in tier-1 (`make test`) and the nightly CI lane.
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def trained():
    data = load("sift", n_base=800, n_queries=20, seed=1)
    graph = build_vamana(data.base, r=12, search_l=30, seed=1)
    gt = compute_ground_truth(data.base, data.queries, k=10)
    config = RPQTrainingConfig(
        epochs=4,
        batch_triplets=48,
        batch_records=10,
        num_triplets=256,
        num_queries=10,
        records_per_query=6,
        beam_width=8,
        refresh_routing_every=2,
        seed=1,
    )
    rpq = RPQ(num_chunks=8, num_codewords=32, config=config, seed=1)
    rpq.fit(data.base, graph, training_sample=data.train)
    pq = ProductQuantizer(8, 32, seed=1).fit(data.train)
    return data, graph, gt, rpq, pq


def batch_recall(index, queries, gt, beam):
    ids = [index.search(q, k=10, beam_width=beam).ids for q in queries]
    return recall_at_k(ids, gt.ids)


class TestEndToEnd:
    def test_rpq_not_worse_than_pq_in_memory(self, trained):
        data, graph, gt, rpq, pq = trained
        mem_rpq = MemoryIndex(graph, rpq.quantizer, data.base)
        mem_pq = MemoryIndex(graph, pq, data.base)
        r_rpq = batch_recall(mem_rpq, data.queries, gt, beam=32)
        r_pq = batch_recall(mem_pq, data.queries, gt, beam=32)
        # The paper's claim is r_rpq > r_pq; at this scale we assert
        # no-regression with slack for training noise.
        assert r_rpq >= r_pq - 0.05

    def test_hybrid_reaches_high_recall(self, trained):
        data, graph, gt, rpq, pq = trained
        disk = DiskIndex(graph, rpq.quantizer, data.base)
        assert batch_recall(disk, data.queries, gt, beam=64) >= 0.9

    def test_rotation_balances_dimensions(self, trained):
        data, graph, gt, rpq, pq = trained
        before = chunk_balance_score(dimension_value_profile(data.base, 8))
        rotated = data.base @ rpq.quantizer.rotation.T
        after = chunk_balance_score(dimension_value_profile(rotated, 8))
        assert after <= before

    def test_quantizer_is_reusable_across_indexes(self, trained):
        data, graph, gt, rpq, pq = trained
        mem = MemoryIndex(graph, rpq.quantizer, data.base)
        disk = DiskIndex(graph, rpq.quantizer, data.base)
        q = data.queries[0]
        res_m = mem.search(q, k=5, beam_width=24)
        res_d = disk.search(q, k=5, beam_width=24)
        assert len(res_m.ids) == 5 and len(res_d.ids) == 5

    def test_training_report_recorded(self, trained):
        _, _, _, rpq, _ = trained
        report = rpq.report
        assert report is not None
        assert len(report.losses) == 4
        assert report.wall_time_seconds > 0


class TestAcrossGraphKinds:
    @pytest.mark.parametrize("builder", [build_hnsw, build_nsg, build_vamana])
    def test_rpq_trains_on_every_graph(self, builder):
        data = load("ukbench", n_base=300, n_queries=8, seed=2)
        if builder is build_hnsw:
            graph = builder(data.base, m=8, ef_construction=32, seed=2)
        elif builder is build_nsg:
            graph = builder(data.base, knn_k=12, r=12, search_l=24)
        else:
            graph = builder(data.base, r=12, search_l=24, seed=2)
        config = RPQTrainingConfig(
            epochs=2,
            num_triplets=64,
            num_queries=4,
            records_per_query=4,
            batch_triplets=32,
            batch_records=6,
            beam_width=6,
            seed=2,
        )
        rpq = RPQ(num_chunks=4, num_codewords=16, config=config, seed=2)
        rpq.fit(data.base, graph)
        gt = compute_ground_truth(data.base, data.queries, k=10)
        index = MemoryIndex(graph, rpq.quantizer, data.base)
        recall = batch_recall(index, data.queries, gt, beam=32)
        assert recall > 0.3
