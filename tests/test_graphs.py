"""Tests for the proximity-graph substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    HNSW,
    ProximityGraph,
    beam_search,
    build_hnsw,
    build_nsg,
    build_vamana,
    exact_distance_fn,
    exact_knn,
    greedy_search,
    knn_graph_adjacency,
    medoid,
    robust_prune,
)

RNG = np.random.default_rng(21)


def make_dataset(n=300, d=8, clusters=6, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=5.0, size=(clusters, d))
    labels = rng.integers(clusters, size=n)
    return centers[labels] + 0.5 * rng.normal(size=(n, d))


def recall_of_graph(graph, x, queries, k=10, beam=40):
    gt, _ = exact_knn(x, k, queries=queries)
    hits = 0
    for qi, q in enumerate(queries):
        res = graph.search(exact_distance_fn(x, q), beam, k=k)
        hits += len(set(res.ids.tolist()) & set(gt[qi].tolist()))
    return hits / (len(queries) * k)


class TestExactKnn:
    def test_matches_naive(self):
        x = RNG.normal(size=(60, 5))
        idx, dist = exact_knn(x, 3)
        d = ((x[:, None, :] - x[None, :, :]) ** 2).sum(-1)
        np.fill_diagonal(d, np.inf)
        naive = np.argsort(d, axis=1)[:, :3]
        np.testing.assert_array_equal(idx, naive)
        np.testing.assert_allclose(
            dist, np.take_along_axis(d, naive, axis=1), atol=1e-9
        )

    def test_external_queries(self):
        x = RNG.normal(size=(50, 4))
        q = RNG.normal(size=(7, 4))
        idx, dist = exact_knn(x, 5, queries=q)
        assert idx.shape == (7, 5)
        assert (np.diff(dist, axis=1) >= -1e-12).all()

    def test_self_included_when_not_excluded(self):
        x = RNG.normal(size=(20, 3))
        idx, dist = exact_knn(x, 1, queries=x, exclude_self=False)
        # Nearest to each row is itself at distance ~0.
        np.testing.assert_allclose(dist[:, 0], 0.0, atol=1e-12)

    def test_k_validation(self):
        x = RNG.normal(size=(10, 3))
        with pytest.raises(ValueError):
            exact_knn(x, 10)  # only 9 valid neighbors with self excluded
        with pytest.raises(ValueError):
            exact_knn(x, 0)

    def test_blocking_is_invisible(self):
        x = RNG.normal(size=(97, 4))
        a, _ = exact_knn(x, 4, block_size=10)
        b, _ = exact_knn(x, 4, block_size=1000)
        np.testing.assert_array_equal(a, b)

    def test_knn_graph_adjacency(self):
        x = RNG.normal(size=(30, 3))
        adj = knn_graph_adjacency(x, 5)
        assert len(adj) == 30
        assert all(len(nbrs) == 5 for nbrs in adj)


class TestProximityGraph:
    def line_graph(self, n=6):
        adjacency = [
            np.array([v for v in (i - 1, i + 1) if 0 <= v < n]) for i in range(n)
        ]
        return ProximityGraph(adjacency=adjacency, entry_point=0)

    def test_basic_props(self):
        g = self.line_graph()
        assert g.num_vertices == 6
        assert g.num_edges == 10
        stats = g.degree_stats()
        assert stats["min"] == 1 and stats["max"] == 2

    def test_connectivity(self):
        g = self.line_graph()
        assert g.is_connected_from_entry()
        disconnected = ProximityGraph(
            adjacency=[np.array([1]), np.array([0]), np.array([], dtype=int)],
            entry_point=0,
        )
        assert not disconnected.is_connected_from_entry()

    def test_entry_validation(self):
        with pytest.raises(ValueError):
            ProximityGraph(adjacency=[np.array([0])], entry_point=5)

    def test_neighbor_range_validation(self):
        with pytest.raises(ValueError):
            ProximityGraph(adjacency=[np.array([3])], entry_point=0)

    def test_n_hop_neighborhood(self):
        g = self.line_graph()
        np.testing.assert_array_equal(g.n_hop_neighborhood(0, 1), [1])
        np.testing.assert_array_equal(g.n_hop_neighborhood(0, 2), [1, 2])
        np.testing.assert_array_equal(g.n_hop_neighborhood(2, 2), [0, 1, 3, 4])

    def test_medoid_of_symmetric_data(self):
        x = np.array([[0.0, 0.0], [1.0, 0.0], [-1.0, 0.0], [5.0, 5.0]])
        # Centroid is (1.25, 1.25); the closest point is (1, 0).
        assert medoid(x) == 1


class TestBeamSearch:
    def test_finds_nearest_on_line(self):
        # Vertices on a line; query nearest vertex 7.
        n = 10
        x = np.arange(n, dtype=float)[:, None]
        adjacency = [
            np.array([v for v in (i - 1, i + 1) if 0 <= v < n]) for i in range(n)
        ]
        res = beam_search(adjacency, 0, exact_distance_fn(x, np.array([7.2])), 3)
        assert res.ids[0] == 7
        assert res.hops >= 7  # must walk along the line

    def test_beam_width_one_is_greedy(self):
        x = make_dataset(n=100, seed=1)
        g = build_vamana(x, r=8, search_l=20, seed=0)
        q = x[3] + 0.01
        res = beam_search(g.adjacency, g.entry_point, exact_distance_fn(x, q), 1)
        greedy = greedy_search(g.adjacency, g.entry_point, exact_distance_fn(x, q))
        assert res.ids[0] == greedy

    def test_trace_records_choices(self):
        x = make_dataset(n=80, seed=2)
        g = build_vamana(x, r=8, search_l=20, seed=0)
        res = g.search(exact_distance_fn(x, x[5]), 10, record_trace=True)
        assert res.trace is not None
        assert len(res.trace) == res.hops
        for step in res.trace:
            assert step.chosen in step.candidates
            assert (np.diff(step.candidate_distances) >= -1e-12).all()
            assert len(step.candidates) <= 10

    def test_counters(self):
        x = make_dataset(n=60, seed=3)
        g = build_vamana(x, r=6, search_l=15, seed=0)
        res = g.search(exact_distance_fn(x, x[0]), 8)
        assert res.hops >= 1
        assert res.distance_computations >= res.visited_count
        assert res.visited_count == res.hops

    def test_larger_beam_never_reduces_result_quality(self):
        x = make_dataset(n=200, seed=4)
        g = build_vamana(x, r=10, search_l=30, seed=0)
        q = RNG.normal(size=x.shape[1])
        d_small = g.search(exact_distance_fn(x, q), 2).distances[0]
        d_large = g.search(exact_distance_fn(x, q), 50).distances[0]
        assert d_large <= d_small + 1e-12

    def test_validation(self):
        adjacency = [np.array([0])]
        with pytest.raises(ValueError):
            beam_search(adjacency, 0, lambda ids: np.zeros(len(ids)), 0)
        with pytest.raises(ValueError):
            beam_search(adjacency, 5, lambda ids: np.zeros(len(ids)), 2)

    def test_isolated_entry(self):
        adjacency = [np.empty(0, dtype=int), np.array([0])]
        res = beam_search(adjacency, 0, lambda ids: np.ones(len(ids)), 4)
        assert list(res.ids) == [0]
        assert res.hops == 1


class TestRobustPrune:
    def test_respects_degree_bound(self):
        x = make_dataset(n=100, seed=5)
        out = robust_prune(x, 0, list(range(1, 100)), alpha=1.2, r=8)
        assert len(out) <= 8
        assert 0 not in out

    def test_keeps_nearest(self):
        x = make_dataset(n=50, seed=6)
        d = ((x - x[0]) ** 2).sum(axis=1)
        d[0] = np.inf
        nearest = int(d.argmin())
        out = robust_prune(x, 0, list(range(1, 50)), alpha=1.2, r=4)
        assert out[0] == nearest

    def test_alpha_one_prunes_more_aggressively(self):
        x = make_dataset(n=150, seed=7)
        tight = robust_prune(x, 0, list(range(1, 150)), alpha=1.0, r=64)
        loose = robust_prune(x, 0, list(range(1, 150)), alpha=1.5, r=64)
        assert len(tight) <= len(loose)

    def test_empty_and_self_candidates(self):
        x = make_dataset(n=10, seed=8)
        assert robust_prune(x, 0, [], alpha=1.2, r=4) == []
        assert robust_prune(x, 0, [0, 0], alpha=1.2, r=4) == []


class TestBuilders:
    def test_vamana_properties(self):
        x = make_dataset(n=250, seed=9)
        g = build_vamana(x, r=12, search_l=30, seed=0)
        assert g.num_vertices == 250
        assert g.degree_stats()["max"] <= 12
        assert g.name == "vamana"

    def test_vamana_recall(self):
        x = make_dataset(n=400, seed=10)
        g = build_vamana(x, r=16, search_l=40, seed=0)
        queries = make_dataset(n=20, seed=11)
        assert recall_of_graph(g, x, queries) > 0.85

    def test_nsg_properties(self):
        x = make_dataset(n=250, seed=12)
        g = build_nsg(x, knn_k=16, r=12, search_l=30)
        assert g.num_vertices == 250
        assert g.is_connected_from_entry()
        assert g.name == "nsg"

    def test_nsg_recall(self):
        x = make_dataset(n=400, seed=13)
        g = build_nsg(x, knn_k=20, r=16, search_l=40)
        queries = make_dataset(n=20, seed=14)
        assert recall_of_graph(g, x, queries) > 0.85

    def test_hnsw_properties(self):
        x = make_dataset(n=250, seed=15)
        g = build_hnsw(x, m=8, ef_construction=40, seed=0)
        assert isinstance(g, HNSW)
        assert g.num_vertices == 250
        assert g.degree_stats()["max"] <= 16  # 2 * m at base layer
        assert g.max_level == len(g.upper_layers)

    def test_hnsw_recall(self):
        x = make_dataset(n=400, seed=16)
        g = build_hnsw(x, m=12, ef_construction=60, seed=0)
        queries = make_dataset(n=20, seed=17)
        assert recall_of_graph(g, x, queries) > 0.85

    def test_hnsw_search_uses_layers(self):
        x = make_dataset(n=300, seed=18)
        g = build_hnsw(x, m=8, ef_construction=40, seed=0)
        q = x[7] + 0.01
        res = g.search(exact_distance_fn(x, q), 20, k=5)
        assert res.ids[0] == 7 or res.distances[0] <= 0.1

    def test_builders_reject_empty(self):
        empty = np.zeros((0, 4))
        for builder in (build_vamana, build_nsg, build_hnsw):
            with pytest.raises(ValueError):
                builder(empty)

    def test_single_point_graphs(self):
        x = np.zeros((1, 4))
        g = build_vamana(x, r=4, search_l=4, seed=0)
        assert g.num_vertices == 1
        g2 = build_nsg(x)
        assert g2.num_vertices == 1
        g3 = build_hnsw(x, m=4, ef_construction=4, seed=0)
        assert g3.num_vertices == 1


@settings(max_examples=8, deadline=None)
@given(st.integers(30, 90), st.integers(0, 1000))
def test_property_vamana_degree_bounded_and_searchable(n, seed):
    x = np.random.default_rng(seed).normal(size=(n, 4))
    g = build_vamana(x, r=8, search_l=16, seed=seed)
    assert g.degree_stats()["max"] <= 8
    q = x[0] + 1e-6
    res = g.search(exact_distance_fn(x, q), 16, k=1)
    # Must find the exact point (distance ~0) with a modest beam.
    assert res.distances[0] < 1e-6 or res.ids[0] == 0
