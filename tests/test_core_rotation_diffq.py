"""Tests for adaptive rotation and the differentiable quantizer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autodiff import Adam, Tensor
from repro.core import (
    AdaptiveRotation,
    DifferentiableQuantizer,
    RPQQuantizer,
    chunk_balance_score,
    dimension_value_profile,
)

RNG = np.random.default_rng(31)


def imbalanced_data(n=300, d=16, seed=0):
    """Data whose variance concentrates in the first dimensions."""
    rng = np.random.default_rng(seed)
    scales = np.linspace(4.0, 0.05, d)
    return rng.normal(size=(n, d)) * scales


class TestAdaptiveRotation:
    def test_initial_matrix_is_identity(self):
        rot = AdaptiveRotation(8)
        np.testing.assert_allclose(rot.matrix_numpy(), np.eye(8), atol=1e-12)

    def test_random_init_is_orthogonal(self):
        rot = AdaptiveRotation(8, init_scale=0.5, rng=np.random.default_rng(0))
        r = rot.matrix_numpy()
        np.testing.assert_allclose(r @ r.T, np.eye(8), atol=1e-9)

    def test_stays_orthogonal_under_training(self):
        # Optimize an arbitrary loss and confirm orthogonality persists.
        rot = AdaptiveRotation(6)
        target = np.random.default_rng(1).normal(size=(6, 6))
        opt = Adam([rot.params], lr=1e-2)
        for _ in range(30):
            opt.zero_grad()
            r = rot.matrix()
            loss = ((r - Tensor(target)) ** 2.0).sum()
            loss.backward()
            opt.step()
        r = rot.matrix_numpy()
        np.testing.assert_allclose(r @ r.T, np.eye(6), atol=1e-8)

    def test_rotate_preserves_norms(self):
        rot = AdaptiveRotation(8, init_scale=1.0, rng=np.random.default_rng(2))
        x = RNG.normal(size=(20, 8))
        rotated = rot.rotate(Tensor(x)).data
        np.testing.assert_allclose(
            np.linalg.norm(rotated, axis=1), np.linalg.norm(x, axis=1), rtol=1e-9
        )

    def test_dim_validation(self):
        with pytest.raises(ValueError):
            AdaptiveRotation(0)

    def test_parameter_count(self):
        assert AdaptiveRotation(8).parameter_count() == 28


class TestDimensionProfile:
    def test_profile_shape_and_mass(self):
        x = imbalanced_data()
        profile = dimension_value_profile(x, 4)
        assert profile.shape == (4, 4)
        np.testing.assert_allclose(profile.ravel(), x.var(axis=0))

    def test_balance_score_detects_imbalance(self):
        x = imbalanced_data()
        skewed = chunk_balance_score(dimension_value_profile(x, 4))
        balanced_data = RNG.normal(size=(300, 16))
        balanced = chunk_balance_score(dimension_value_profile(balanced_data, 4))
        assert skewed > balanced

    def test_divisibility_check(self):
        with pytest.raises(ValueError):
            dimension_value_profile(np.zeros((5, 10)), 4)

    def test_zero_variance_score(self):
        assert chunk_balance_score(np.zeros((4, 4))) == 0.0


class TestDifferentiableQuantizer:
    def make(self, d=16, m=4, k=8, seed=0):
        q = DifferentiableQuantizer(d, m, k, seed=seed)
        x = imbalanced_data(d=d, seed=seed)
        q.warm_start(x)
        return q, x

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            DifferentiableQuantizer(10, 3, 8)
        with pytest.raises(ValueError):
            DifferentiableQuantizer(8, 2, 8, temperature=0.0)
        with pytest.raises(ValueError):
            DifferentiableQuantizer(8, 2, 8, gumbel_tau=-1.0)

    def test_warm_start_matches_pq_error(self):
        # With an identity rotation, warm-started hard encoding should be
        # close to a plain PQ at the same geometry.
        from repro.quantization import ProductQuantizer

        q, x = self.make()
        pq = ProductQuantizer(4, 8, seed=0).fit(x)
        assert q.quantization_error(x) <= pq.quantization_error(x) * 1.25

    def test_assignment_probabilities_are_simplex(self):
        q, x = self.make()
        probs = q.assignment_probabilities(Tensor(x[:10]), chunk=0).data
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(10), atol=1e-9)
        assert (probs >= 0).all()

    def test_soft_encode_shapes(self):
        q, x = self.make()
        codes = q.soft_encode(Tensor(x[:5]), use_gumbel=False)
        assert len(codes) == 4
        for c in codes:
            assert c.shape == (5, 8)
            np.testing.assert_allclose(c.data.sum(axis=1), np.ones(5), atol=1e-9)

    def test_soft_reconstruct_approaches_hard_at_low_temperature(self):
        q, x = self.make()
        q.temperature = 0.01
        q.gumbel_tau = 0.01
        soft = q.soft_reconstruct(Tensor(x[:20]), use_gumbel=False).data
        hard = q.reconstruct_hard(x[:20])
        np.testing.assert_allclose(soft, hard, atol=1e-3)

    def test_encode_hard_matches_codebook_encode(self):
        q, x = self.make()
        codes = q.encode_hard(x[:15])
        book = q.codebook_numpy()
        rotated = x[:15] @ q.rotation_matrix().T
        np.testing.assert_array_equal(codes, book.encode(rotated))

    def test_gradients_reach_all_parameters(self):
        q, x = self.make()
        recon = q.soft_reconstruct(Tensor(x[:8]), use_gumbel=False)
        loss = (recon * recon).sum()
        loss.backward()
        assert q.rotation.params.grad is not None
        assert any(np.abs(q.rotation.params.grad).max() > 0 for _ in [0])
        for book in q.codebooks:
            assert book.grad is not None

    def test_freeze_roundtrip(self):
        q, x = self.make()
        frozen = q.freeze()
        assert isinstance(frozen, RPQQuantizer)
        np.testing.assert_array_equal(frozen.encode(x[:10]), q.encode_hard(x[:10]))

    def test_training_reduces_distortion(self):
        # Pure reconstruction training (no graph) must reduce hard error:
        # a smoke test that gradients point the right way end-to-end.
        q, x = self.make(d=8, m=2, k=4, seed=3)
        before = q.quantization_error(x)
        opt = Adam(q.parameters(), lr=5e-3)
        for _ in range(60):
            batch = x[RNG.integers(x.shape[0], size=64)]
            xt = Tensor(batch)
            rotated = q.rotation.rotate(xt)
            recon = q.soft_reconstruct(xt, use_gumbel=False)
            loss = ((recon - rotated.detach()) ** 2.0).sum(axis=1).mean()
            opt.zero_grad()
            loss.backward()
            opt.step()
        after = q.quantization_error(x)
        assert after <= before * 1.02  # must not regress; usually improves


class TestRPQQuantizer:
    def test_rotation_shape_validation(self):
        from repro.quantization import Codebook

        book = Codebook(RNG.normal(size=(2, 4, 3)))
        with pytest.raises(ValueError):
            RPQQuantizer(rotation=np.eye(5), codebook=book)

    def test_fit_is_disabled(self):
        from repro.quantization import Codebook

        book = Codebook(RNG.normal(size=(2, 4, 3)))
        quant = RPQQuantizer(rotation=np.eye(6), codebook=book)
        with pytest.raises(RuntimeError):
            quant.fit(np.zeros((2, 6)))

    def test_parameter_bytes_smaller_than_catalyst(self):
        # Table 5's shape: RPQ's model is a skew vector + codebook,
        # substantially smaller than Catalyst's MLP.
        from repro.quantization import CatalystQuantizer, Codebook

        d, m, k = 16, 4, 16
        book = Codebook(RNG.normal(size=(m, k, d // m)))
        rpq = RPQQuantizer(rotation=np.eye(d), codebook=book)
        x = RNG.normal(size=(300, d))
        cat = CatalystQuantizer(
            m, k, out_dim=16, hidden_dim=128, epochs=1, batch_size=64, seed=0
        ).fit(x)
        assert rpq.parameter_bytes() < cat.parameter_bytes()

    def test_lookup_table_adc_consistency(self):
        from repro.quantization import Codebook

        d, m, k = 12, 3, 8
        rng = np.random.default_rng(5)
        # Random orthonormal rotation.
        q_mat, _ = np.linalg.qr(rng.normal(size=(d, d)))
        book = Codebook(rng.normal(size=(m, k, d // m)))
        quant = RPQQuantizer(rotation=q_mat, codebook=book)
        x = rng.normal(size=(40, d))
        query = rng.normal(size=d)
        codes = quant.encode(x)
        est = quant.lookup_table(query).distance(codes)
        recon = quant.decode(codes)  # rotated space
        expected = ((recon - query @ q_mat.T) ** 2).sum(axis=1)
        np.testing.assert_allclose(est, expected, atol=1e-9)
