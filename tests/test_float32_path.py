"""Half-precision memory path: ``storage_dtype=np.float32`` end-to-end.

The float32 opt-in covers codewords, dataset encoding, and the ADC
tables.  Distances then differ from the float64 reference by ULP-level
noise (a near-tied codeword argmin may flip), so these are
*tolerance* parity tests — unlike the engine's bitwise batch/scalar
guarantees, which must still hold exactly *within* the float32 path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import compute_ground_truth, load
from repro.graphs import build_vamana
from repro.index import MemoryIndex
from repro.metrics import recall_at_k
from repro.quantization import OptimizedProductQuantizer, ProductQuantizer


@pytest.fixture(scope="module")
def setup():
    data = load("sift", n_base=500, n_queries=16, seed=3)
    quantizer = ProductQuantizer(8, 16, seed=0).fit(data.train)
    graph = build_vamana(data.base, r=10, search_l=24, seed=0)
    gt = compute_ground_truth(data.base, data.queries, k=10)
    return data, quantizer, graph, gt


class TestCodebookDtype:
    def test_astype_roundtrip(self, setup):
        _, quantizer, _, _ = setup
        book32 = quantizer.codebook.astype(np.float32)
        assert book32.codewords.dtype == np.float32
        assert quantizer.codebook.codewords.dtype == np.float64
        np.testing.assert_allclose(
            book32.codewords, quantizer.codebook.codewords, rtol=1e-6
        )

    def test_float32_encode_decode_dtypes(self, setup):
        data, quantizer, _, _ = setup
        book32 = quantizer.codebook.astype(np.float32)
        codes = book32.encode(data.base[:32].astype(np.float32))
        assert codes.dtype == book32.code_dtype
        assert book32.decode(codes).dtype == np.float32

    def test_float32_codes_near_reference(self, setup):
        data, quantizer, _, _ = setup
        book64 = quantizer.codebook
        book32 = book64.astype(np.float32)
        codes64 = book64.encode(data.base)
        codes32 = book32.encode(data.base)
        # Argmin flips happen only on near-ties; the overwhelming
        # majority of sub-vector assignments must agree.
        assert (codes64 == codes32).mean() > 0.99


class TestFloat32MemoryPath:
    def test_recall_parity_tolerance(self, setup):
        data, quantizer, graph, gt = setup
        ref = MemoryIndex(graph, quantizer, data.base)
        half = MemoryIndex(
            graph, quantizer, data.base, storage_dtype=np.float32
        )
        assert half.table_dtype == np.dtype(np.float32)
        r64 = [ref.search(q, k=10, beam_width=32) for q in data.queries]
        r32 = [half.search(q, k=10, beam_width=32) for q in data.queries]
        recall64 = recall_at_k([r.ids for r in r64], gt.ids)
        recall32 = recall_at_k([r.ids for r in r32], gt.ids)
        assert abs(recall64 - recall32) <= 0.05

    def test_distance_parity_tolerance(self, setup):
        data, quantizer, graph, _ = setup
        ref = MemoryIndex(graph, quantizer, data.base)
        half = MemoryIndex(
            graph, quantizer, data.base, storage_dtype=np.float32
        )
        for q in data.queries[:4]:
            r64 = ref.search(q, k=5, beam_width=24)
            r32 = half.search(q, k=5, beam_width=24)
            shared = np.intersect1d(r64.ids, r32.ids)
            assert shared.size >= 3  # rankings may reshuffle near-ties
            d64 = dict(zip(r64.ids.tolist(), r64.distances.tolist()))
            d32 = dict(zip(r32.ids.tolist(), r32.distances.tolist()))
            for v in shared:
                assert d64[int(v)] == pytest.approx(
                    d32[int(v)], rel=1e-3, abs=1e-3
                )

    def test_float32_batch_is_bitwise_to_scalar(self, setup):
        data, quantizer, graph, _ = setup
        half = MemoryIndex(
            graph, quantizer, data.base, storage_dtype=np.float32
        )
        scalars = [
            half.search(q, k=10, beam_width=24) for q in data.queries
        ]
        batch = half.search_batch(data.queries, k=10, beam_width=24)
        for i, scalar in enumerate(scalars):
            row = batch.row(i)
            np.testing.assert_array_equal(scalar.ids, row.ids)
            np.testing.assert_array_equal(scalar.distances, row.distances)
            assert scalar.hops == row.hops

    def test_rotated_quantizer_float32(self, setup):
        data, _, graph, gt = setup
        opq = OptimizedProductQuantizer(8, 16, opq_iter=3, seed=0).fit(
            data.train
        )
        ref = MemoryIndex(graph, opq, data.base)
        half = MemoryIndex(graph, opq, data.base, storage_dtype=np.float32)
        r64 = [ref.search(q, k=10, beam_width=32) for q in data.queries]
        r32 = [half.search(q, k=10, beam_width=32) for q in data.queries]
        recall64 = recall_at_k([r.ids for r in r64], gt.ids)
        recall32 = recall_at_k([r.ids for r in r32], gt.ids)
        assert abs(recall64 - recall32) <= 0.08

    def test_default_path_unchanged(self, setup):
        data, quantizer, graph, _ = setup
        index = MemoryIndex(graph, quantizer, data.base)
        assert index.storage_dtype == np.dtype(np.float64)
        assert index.table_dtype == np.dtype(np.float64)
        assert index._build_tables(data.queries[:2]).tables.dtype == np.float64

    def test_invalid_storage_dtype(self, setup):
        data, quantizer, graph, _ = setup
        with pytest.raises(ValueError):
            MemoryIndex(
                graph, quantizer, data.base, storage_dtype=np.float16
            )
