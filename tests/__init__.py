"""Test package marker.

The suite uses relative imports (``from .helpers import gradcheck``),
which only resolve when ``tests`` is an importable package.
"""
