"""Tests for the joint training loop and the RPQ facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    RPQ,
    DifferentiableQuantizer,
    RPQTrainingConfig,
    train_rpq,
)
from repro.graphs import build_vamana

RNG = np.random.default_rng(51)


def make_setup(n=250, d=8, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=5.0, size=(6, d))
    x = centers[rng.integers(6, size=n)] + 0.4 * rng.normal(size=(n, d))
    graph = build_vamana(x, r=8, search_l=20, seed=seed)
    return x, graph


def quick_config(**overrides) -> RPQTrainingConfig:
    defaults = dict(
        epochs=3,
        batch_triplets=32,
        batch_records=8,
        num_triplets=64,
        num_queries=6,
        records_per_query=4,
        beam_width=6,
        seed=0,
    )
    defaults.update(overrides)
    return RPQTrainingConfig(**defaults)


class TestTrainRPQ:
    def test_joint_training_runs_and_logs(self):
        x, graph = make_setup()
        quant = DifferentiableQuantizer(8, 2, 8, seed=0)
        quant.warm_start(x)
        report = train_rpq(quant, graph, x, quick_config())
        assert len(report.losses) == 3
        assert len(report.alpha_history) == 3
        assert report.wall_time_seconds > 0
        assert 0.0 <= report.decision_accuracy_before <= 1.0
        assert 0.0 <= report.decision_accuracy_after <= 1.0

    def test_neighborhood_only_mode(self):
        x, graph = make_setup()
        quant = DifferentiableQuantizer(8, 2, 8, seed=0)
        quant.warm_start(x)
        report = train_rpq(
            quant, graph, x, quick_config(use_routing=False)
        )
        assert all(r == 0.0 for r in report.routing_losses)
        assert any(n > 0.0 for n in report.neighborhood_losses)

    def test_routing_only_mode(self):
        x, graph = make_setup()
        quant = DifferentiableQuantizer(8, 2, 8, seed=0)
        quant.warm_start(x)
        report = train_rpq(
            quant, graph, x, quick_config(use_neighborhood=False)
        )
        assert all(n == 0.0 for n in report.neighborhood_losses)

    def test_training_moves_parameters(self):
        x, graph = make_setup()
        quant = DifferentiableQuantizer(8, 2, 8, seed=0)
        quant.warm_start(x)
        before = quant.rotation_matrix()
        train_rpq(quant, graph, x, quick_config())
        after = quant.rotation_matrix()
        assert np.abs(after - before).max() > 1e-6
        # Rotation must stay orthogonal after training.
        np.testing.assert_allclose(after @ after.T, np.eye(8), atol=1e-8)


class TestRPQFacade:
    def test_fit_produces_working_quantizer(self):
        x, graph = make_setup()
        rpq = RPQ(num_chunks=2, num_codewords=8, config=quick_config())
        assert not rpq.is_fitted
        rpq.fit(x, graph)
        assert rpq.is_fitted
        codes = rpq.quantizer.encode(x[:10])
        assert codes.shape == (10, 2)
        table = rpq.quantizer.lookup_table(x[0])
        d = table.distance(codes)
        assert d.shape == (10,)
        assert np.isfinite(d).all()

    def test_quantizer_before_fit_raises(self):
        rpq = RPQ(num_chunks=2, num_codewords=8)
        with pytest.raises(RuntimeError):
            _ = rpq.quantizer

    def test_size_mismatch_raises(self):
        x, graph = make_setup()
        rpq = RPQ(num_chunks=2, num_codewords=8, config=quick_config())
        with pytest.raises(ValueError):
            rpq.fit(x[:-10], graph)

    def test_seed_reproducibility(self):
        x, graph = make_setup()
        q1 = RPQ(2, 8, config=quick_config(), seed=7).fit(x, graph).quantizer
        q2 = RPQ(2, 8, config=quick_config(), seed=7).fit(x, graph).quantizer
        np.testing.assert_allclose(q1.rotation, q2.rotation)
        np.testing.assert_allclose(
            q1.codebook.codewords, q2.codebook.codewords
        )

    def test_rpq_beats_pq_on_routing_decisions(self):
        """The headline mechanism: after training, the quantized search
        makes more oracle-consistent next-hop decisions than before."""
        x, graph = make_setup(n=300, seed=3)
        rpq = RPQ(
            num_chunks=2,
            num_codewords=8,
            config=quick_config(epochs=6, num_queries=10),
        )
        rpq.fit(x, graph)
        report = rpq.report
        assert report is not None
        # Training should not make decisions *worse*; allow slack for noise.
        assert (
            report.decision_accuracy_after
            >= report.decision_accuracy_before - 0.1
        )
