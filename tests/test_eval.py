"""Tests for the sweep machinery, table formatting, and harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import compute_ground_truth, load
from repro.eval import (
    OperatingPoint,
    format_grid,
    format_table,
    max_recall,
    metric_at_recall,
    sweep_beam,
)
from repro.eval.harness import (
    adaptive_recall_target,
    make_index,
    make_quantizer,
    prepare,
    quick_rpq_config,
    run_table2,
)
from repro.graphs import build_vamana
from repro.index import MemoryIndex
from repro.quantization import ProductQuantizer


def point(beam, recall, qps):
    return OperatingPoint(
        beam_width=beam,
        recall=recall,
        qps=qps,
        mean_hops=float(beam),
        mean_distance_computations=10.0 * beam,
    )


class TestMetricAtRecall:
    CURVE = [point(10, 0.5, 1000.0), point(20, 0.8, 500.0), point(40, 0.9, 250.0)]

    def test_exact_hit(self):
        assert metric_at_recall(self.CURVE, 0.8) == 500.0

    def test_interpolation(self):
        got = metric_at_recall(self.CURVE, 0.65)
        assert 500.0 < got < 1000.0
        np.testing.assert_allclose(got, 750.0)

    def test_unreachable_target(self):
        assert metric_at_recall(self.CURVE, 0.95) is None

    def test_below_curve_start(self):
        assert metric_at_recall(self.CURVE, 0.1) == 1000.0

    def test_other_attribute(self):
        got = metric_at_recall(self.CURVE, 0.8, attr="mean_hops")
        assert got == 20.0

    def test_empty(self):
        assert metric_at_recall([], 0.5) is None

    def test_max_recall(self):
        assert max_recall(self.CURVE) == 0.9
        assert max_recall([]) == 0.0

    def test_adaptive_target_uses_weakest_method(self):
        curves = {"a": self.CURVE, "b": [point(10, 0.6, 100.0)]}
        target = adaptive_recall_target(curves, fraction=0.95)
        np.testing.assert_allclose(target, 0.95 * 0.6)


class TestSweep:
    def test_sweep_produces_monotone_recall(self):
        data = load("ukbench", n_base=400, n_queries=10, seed=0)
        graph = build_vamana(data.base, r=10, search_l=24, seed=0)
        quantizer = ProductQuantizer(8, 16, seed=0).fit(data.train)
        index = MemoryIndex(graph, quantizer, data.base)
        gt = compute_ground_truth(data.base, data.queries, k=10)
        points = sweep_beam(index, data.queries, gt, k=10, beam_widths=(10, 32, 64))
        assert len(points) == 3
        recalls = [p.recall for p in points]
        # Wider beams should not lose much recall.
        assert recalls[-1] >= recalls[0] - 0.05
        hops = [p.mean_hops for p in points]
        assert hops[-1] >= hops[0]

    def test_sweep_skips_beams_below_k(self):
        data = load("ukbench", n_base=200, n_queries=5, seed=0)
        graph = build_vamana(data.base, r=8, search_l=16, seed=0)
        quantizer = ProductQuantizer(4, 8, seed=0).fit(data.train)
        index = MemoryIndex(graph, quantizer, data.base)
        gt = compute_ground_truth(data.base, data.queries, k=10)
        points = sweep_beam(index, data.queries, gt, k=10, beam_widths=(5, 16))
        assert [p.beam_width for p in points] == [16]


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["name", "qps"], [["pq", 12.5], ["rpq", 40.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "rpq" in lines[3]

    def test_format_table_title(self):
        text = format_table(["a"], [[1]], title="Table X")
        assert text.splitlines()[0] == "Table X"

    def test_format_grid(self):
        text = format_grid(["K=8"], ["M=4", "M=8"], [[1, 2]], corner="K\\M")
        assert "K\\M" in text
        assert "M=8" in text


class TestHarness:
    def test_prepare_builds_consistent_state(self):
        prepared = prepare("ukbench", "vamana", n_base=300, n_queries=8, seed=0)
        assert prepared.graph.num_vertices == 300
        assert prepared.ground_truth.num_queries == 8

    def test_prepare_validates_graph_kind(self):
        with pytest.raises(KeyError):
            prepare("sift", "delaunay")

    def test_make_quantizer_all_names(self):
        prepared = prepare("ukbench", "vamana", n_base=250, n_queries=5, seed=0)
        config = quick_rpq_config(epochs=1, num_triplets=32, num_queries=3)
        for name in ("pq", "opq", "lnc"):
            q = make_quantizer(name, prepared, num_chunks=4, num_codewords=8)
            assert q.is_fitted
        q = make_quantizer(
            "rpq", prepared, num_chunks=4, num_codewords=8, rpq_config=config
        )
        assert q.is_fitted
        with pytest.raises(KeyError):
            make_quantizer("lsh", prepared)

    def test_make_index_scenarios(self):
        prepared = prepare("ukbench", "vamana", n_base=250, n_queries=5, seed=0)
        quantizer = make_quantizer("pq", prepared, 4, 8)
        mem = make_index("memory", prepared, quantizer)
        hyb = make_index("hybrid", prepared, quantizer)
        l2r = make_index("memory", prepared, quantizer, method="l2r")
        for index in (mem, hyb, l2r):
            res = index.search(prepared.dataset.queries[0], k=5, beam_width=16)
            assert len(res.ids) == 5
        with pytest.raises(KeyError):
            make_index("gpu", prepared, quantizer)

    def test_run_table2_full_ranking_wins(self):
        out = run_table2(("ukbench",), n_base=500, n_queries=15, seed=0)
        truncated, full = out["ukbench"]
        assert full > truncated
        assert full > 0.8
