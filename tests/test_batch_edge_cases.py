"""Edge cases of the batched query engine's public API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load
from repro.graphs import build_vamana
from repro.graphs.beam import beam_search_batch
from repro.index import DiskIndex, MemoryIndex, StreamingIndex
from repro.quantization import ProductQuantizer


@pytest.fixture(scope="module")
def setup():
    data = load("sift", n_base=400, n_queries=12, seed=1)
    quantizer = ProductQuantizer(8, 16, seed=0).fit(data.train)
    graph = build_vamana(data.base, r=10, search_l=24, seed=0)
    return data, quantizer, graph


class TestEmptyBatch:
    def test_memory(self, setup):
        data, quantizer, graph = setup
        index = MemoryIndex(graph, quantizer, data.base)
        batch = index.search_batch(
            np.empty((0, data.base.shape[1])), k=10, beam_width=24
        )
        assert batch.num_queries == 0
        assert batch.ids.shape == (0, 10)
        assert batch.total_hops == 0

    def test_disk(self, setup):
        data, quantizer, graph = setup
        index = DiskIndex(graph, quantizer, data.base)
        batch = index.search_batch(
            np.empty((0, data.base.shape[1])), k=10, beam_width=24
        )
        assert batch.num_queries == 0
        assert batch.total_page_reads == 0

    def test_kernel(self, setup):
        data, _, graph = setup
        result = beam_search_batch(
            graph.adjacency,
            np.empty(0, dtype=np.int64),
            lambda qi, vi: np.zeros(len(vi)),
            beam_width=8,
        )
        assert result.num_queries == 0


class TestBatchOfOne:
    def test_matches_scalar(self, setup):
        data, quantizer, graph = setup
        index = MemoryIndex(graph, quantizer, data.base)
        q = data.queries[0]
        scalar = index.search(q, k=10, beam_width=24)
        batch = index.search_batch(q[None, :], k=10, beam_width=24)
        assert batch.num_queries == 1
        row = batch.row(0)
        np.testing.assert_array_equal(scalar.ids, row.ids)
        np.testing.assert_array_equal(scalar.distances, row.distances)
        assert scalar.hops == row.hops

    def test_1d_query_accepted(self, setup):
        data, quantizer, graph = setup
        index = MemoryIndex(graph, quantizer, data.base)
        batch = index.search_batch(data.queries[0], k=5, beam_width=16)
        assert batch.num_queries == 1


class TestKEqualsBeamWidth:
    def test_memory(self, setup):
        data, quantizer, graph = setup
        index = MemoryIndex(graph, quantizer, data.base)
        scalars = [
            index.search(q, k=16, beam_width=16) for q in data.queries
        ]
        batch = index.search_batch(data.queries, k=16, beam_width=16)
        for i, scalar in enumerate(scalars):
            row = batch.row(i)
            np.testing.assert_array_equal(scalar.ids, row.ids)
            np.testing.assert_array_equal(scalar.distances, row.distances)

    def test_k_above_beam_rejected(self, setup):
        data, quantizer, graph = setup
        index = MemoryIndex(graph, quantizer, data.base)
        with pytest.raises(ValueError):
            index.search_batch(data.queries, k=20, beam_width=16)

    def test_k_below_one_rejected(self, setup):
        data, quantizer, graph = setup
        index = MemoryIndex(graph, quantizer, data.base)
        with pytest.raises(ValueError):
            index.search_batch(data.queries, k=0, beam_width=16)


class TestDuplicateQueries:
    def test_identical_rows(self, setup):
        data, quantizer, graph = setup
        index = MemoryIndex(graph, quantizer, data.base)
        queries = np.vstack([data.queries[0]] * 5)
        batch = index.search_batch(queries, k=10, beam_width=24)
        for i in range(1, 5):
            np.testing.assert_array_equal(batch.ids[0], batch.ids[i])
            np.testing.assert_array_equal(
                batch.distances[0], batch.distances[i]
            )
            assert batch.hops[0] == batch.hops[i]

    def test_mixed_duplicates_match_scalar(self, setup):
        data, quantizer, graph = setup
        index = MemoryIndex(graph, quantizer, data.base)
        queries = np.vstack(
            [data.queries[0], data.queries[1], data.queries[0]]
        )
        batch = index.search_batch(queries, k=10, beam_width=24)
        for i, q in enumerate(queries):
            scalar = index.search(q, k=10, beam_width=24)
            np.testing.assert_array_equal(scalar.ids, batch.row(i).ids)


class TestFloat32Tables:
    def test_agreement_within_tolerance(self, setup):
        data, quantizer, graph = setup
        f64 = MemoryIndex(graph, quantizer, data.base)
        f32 = MemoryIndex(
            graph, quantizer, data.base, table_dtype=np.float32
        )
        b64 = f64.search_batch(data.queries, k=10, beam_width=32)
        b32 = f32.search_batch(data.queries, k=10, beam_width=32)
        # Distances agree to float32 resolution; the candidate ranking
        # may differ on near-ties, so compare distances, not ids.
        np.testing.assert_allclose(
            b32.distances, b64.distances, rtol=1e-4, atol=1e-4
        )

    def test_float32_table_dtype_propagates(self, setup):
        data, quantizer, _ = setup
        table = quantizer.lookup_table(data.queries[0], dtype=np.float32)
        assert table.table.dtype == np.float32
        tables = quantizer.lookup_table_batch(
            data.queries, dtype=np.float32
        )
        assert tables.tables.dtype == np.float32

    def test_scalar_and_batch_f32_parity(self, setup):
        # The float32 path must still be batch/scalar bitwise-parity.
        data, quantizer, graph = setup
        index = MemoryIndex(
            graph, quantizer, data.base, table_dtype=np.float32
        )
        scalars = [
            index.search(q, k=10, beam_width=24) for q in data.queries
        ]
        batch = index.search_batch(data.queries, k=10, beam_width=24)
        for i, scalar in enumerate(scalars):
            row = batch.row(i)
            np.testing.assert_array_equal(scalar.ids, row.ids)
            np.testing.assert_array_equal(scalar.distances, row.distances)


class TestStreamingEdgeCases:
    def test_empty_index(self, setup):
        data, quantizer, _ = setup
        index = StreamingIndex(
            quantizer, dim=data.base.shape[1], r=8, search_l=16, seed=0
        )
        batch = index.search_batch(data.queries, k=5, beam_width=16)
        assert batch.num_queries == len(data.queries)
        assert (batch.counts == 0).all()
        assert (batch.ids == -1).all()

    def test_fewer_alive_than_k(self, setup):
        data, quantizer, _ = setup
        index = StreamingIndex(
            quantizer, dim=data.base.shape[1], r=8, search_l=16, seed=0
        )
        index.insert_batch(data.base[:6])
        for v in (0, 2, 4):
            index.delete(v)
        scalars = [
            index.search(q, k=5, beam_width=16) for q in data.queries
        ]
        batch = index.search_batch(data.queries, k=5, beam_width=16)
        for i, scalar in enumerate(scalars):
            row = batch.row(i)
            np.testing.assert_array_equal(scalar.ids, row.ids)
            assert row.ids.size <= 3
