"""IndexSpec round-trips, the scenario registry, and build() wiring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    DatasetSpec,
    GraphSpec,
    IndexSpec,
    QuantizerSpec,
    ScenarioSpec,
    ShardingSpec,
    build,
    get_scenario,
    scenario_for_index,
    scenario_names,
)
from repro.datasets import load
from repro.graphs import build_vamana
from repro.index import (
    DiskIndex,
    FilteredIndex,
    FreshVamanaIndex,
    L2RIndex,
    MemoryIndex,
)
from repro.quantization import ProductQuantizer
from repro.serving import ShardedIndex


def full_spec() -> IndexSpec:
    return IndexSpec(
        dataset=DatasetSpec(name="deep", n_base=500, n_queries=12, seed=3),
        graph=GraphSpec(kind="hnsw", seed=1, params={"m": 6}),
        quantizer=QuantizerSpec(
            kind="opq", num_chunks=4, num_codewords=16, seed=2,
            params={"opq_iter": 3},
        ),
        scenario=ScenarioSpec(kind="hybrid", params={"io_width": 2}),
        sharding=ShardingSpec(
            num_shards=3, strategy="round_robin", backend="process"
        ),
    )


# ----------------------------------------------------------------------
# Spec round-trips
# ----------------------------------------------------------------------


def test_dict_round_trip():
    spec = full_spec()
    assert IndexSpec.from_dict(spec.to_dict()) == spec


def test_json_round_trip():
    spec = full_spec()
    assert IndexSpec.from_json(spec.to_json()) == spec


def test_default_spec_round_trips():
    assert IndexSpec.from_dict(IndexSpec().to_dict()) == IndexSpec()


def test_partial_dict_fills_defaults():
    spec = IndexSpec.from_dict({"scenario": {"kind": "memory"}})
    assert spec == IndexSpec()


def test_sharding_backend_round_trips():
    spec = IndexSpec(sharding=ShardingSpec(num_shards=2, backend="process"))
    payload = spec.to_dict()
    assert payload["sharding"]["backend"] == "process"
    assert IndexSpec.from_dict(payload) == spec
    # Default stays "thread" and a backend typo is an unknown key.
    assert IndexSpec.from_dict({}).sharding.backend == "thread"
    with pytest.raises(ValueError, match="unknown keys"):
        IndexSpec.from_dict({"sharding": {"backned": "process"}})


def test_build_rejects_unknown_backend():
    data = load("sift", n_base=60, n_queries=2, seed=0).base
    quantizer = ProductQuantizer(8, 8, seed=0).fit(data)
    # Sharded and unsharded alike: a typo'd backend value fails loudly
    # up front (before any graph builds), matching the unknown-key
    # contract of the spec layer.
    for num_shards in (1, 2):
        spec = IndexSpec(
            sharding=ShardingSpec(num_shards=num_shards, backend="proces")
        )
        with pytest.raises(ValueError, match="unknown shard backend"):
            build(spec, data=data, quantizer=quantizer)


def test_unknown_section_rejected():
    with pytest.raises(ValueError, match="unknown spec section"):
        IndexSpec.from_dict({"scenraio": {"kind": "memory"}})


def test_unknown_key_rejected():
    with pytest.raises(ValueError, match="unknown keys"):
        IndexSpec.from_dict({"graph": {"knid": "hnsw"}})


def test_future_format_version_rejected():
    payload = IndexSpec().to_dict()
    payload["format_version"] = 999
    with pytest.raises(ValueError, match="format version"):
        IndexSpec.from_dict(payload)


def test_to_dict_is_json_plain():
    import json

    json.dumps(full_spec().to_dict())  # no numpy or custom types


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


def test_builtin_scenarios_registered():
    assert scenario_names() == [
        "filtered",
        "hybrid",
        "l2r",
        "memory",
        "streaming",
    ]


def test_get_scenario_unknown():
    with pytest.raises(KeyError, match="unknown scenario"):
        get_scenario("nope")


def test_supports_labels_flags():
    assert get_scenario("filtered").supports_labels
    assert not get_scenario("memory").supports_labels


@pytest.fixture(scope="module")
def setup():
    data = load("sift", n_base=220, n_queries=6, seed=4)
    quantizer = ProductQuantizer(8, 16, seed=0).fit(data.train)
    graph = build_vamana(data.base, r=8, search_l=20, seed=0)
    return data, quantizer, graph


def test_scenario_for_index_most_derived(setup):
    data, quantizer, graph = setup
    l2r = L2RIndex(graph, quantizer, data.base, rng=np.random.default_rng(0))
    assert scenario_for_index(l2r).name == "l2r"
    mem = MemoryIndex(graph, quantizer, data.base)
    assert scenario_for_index(mem).name == "memory"


def test_scenario_for_index_unknown_type():
    with pytest.raises(TypeError, match="registered"):
        scenario_for_index(object())


# ----------------------------------------------------------------------
# build()
# ----------------------------------------------------------------------


def scenario_spec_matrix():
    return [
        ("memory", {}, MemoryIndex),
        ("hybrid", {"io_width": 2}, DiskIndex),
        ("l2r", {"seed": 1}, L2RIndex),
        ("streaming", {"r": 8, "search_l": 16}, FreshVamanaIndex),
        ("filtered", {"num_labels": 3}, FilteredIndex),
    ]


@pytest.mark.parametrize(
    "kind,params,index_cls",
    scenario_spec_matrix(),
    ids=[row[0] for row in scenario_spec_matrix()],
)
def test_build_each_scenario_from_spec_alone(kind, params, index_cls):
    spec = IndexSpec(
        dataset=DatasetSpec(name="sift", n_base=200, n_queries=5, seed=0),
        graph=GraphSpec(kind="vamana", params={"r": 8, "search_l": 16}),
        quantizer=QuantizerSpec(kind="pq", num_chunks=8, num_codewords=16),
        scenario=ScenarioSpec(kind=kind, params=params),
    )
    # Round through JSON so this pins "constructible from a JSON spec".
    index = build(IndexSpec.from_json(spec.to_json()))
    assert isinstance(index, index_cls)
    assert index.spec == spec


def test_build_sharded_from_spec_alone():
    spec = IndexSpec(
        dataset=DatasetSpec(name="sift", n_base=200, n_queries=5, seed=0),
        graph=GraphSpec(kind="vamana", params={"r": 8, "search_l": 16}),
        quantizer=QuantizerSpec(kind="pq", num_chunks=8, num_codewords=16),
        sharding=ShardingSpec(num_shards=4),
    )
    index = build(IndexSpec.from_json(spec.to_json()))
    assert isinstance(index, ShardedIndex)
    assert index.num_shards == 4
    assert index.num_vertices == 200
    assert index.spec == spec


def test_build_with_overrides_matches_direct_construction(setup):
    data, quantizer, graph = setup
    spec = IndexSpec(scenario=ScenarioSpec(kind="memory"))
    index = build(spec, data=data.base, graph=graph, quantizer=quantizer)
    direct = MemoryIndex(graph, quantizer, data.base)
    got = index.search_batch(data.queries, k=5, beam_width=16)
    want = direct.search_batch(data.queries, k=5, beam_width=16)
    np.testing.assert_array_equal(got.ids, want.ids)
    np.testing.assert_array_equal(got.distances, want.distances)


def test_build_rejects_single_graph_for_sharded(setup):
    data, quantizer, graph = setup
    spec = IndexSpec(sharding=ShardingSpec(num_shards=2))
    with pytest.raises(ValueError, match="shard_graphs"):
        build(spec, data=data.base, graph=graph, quantizer=quantizer)


def test_build_unknown_graph_kind(setup):
    data, quantizer, _ = setup
    spec = IndexSpec(graph=GraphSpec(kind="delaunay"))
    with pytest.raises(KeyError, match="unknown graph kind"):
        build(spec, data=data.base, quantizer=quantizer)


def test_build_unknown_quantizer_kind(setup):
    data, _, graph = setup
    spec = IndexSpec(quantizer=QuantizerSpec(kind="vq"))
    with pytest.raises(KeyError, match="unknown quantizer kind"):
        build(spec, data=data.base, graph=graph)


def test_build_fits_quantizer_when_not_supplied(setup):
    data, _, graph = setup
    spec = IndexSpec(
        quantizer=QuantizerSpec(kind="pq", num_chunks=8, num_codewords=16)
    )
    index = build(spec, data=data.base, graph=graph)
    reference = ProductQuantizer(8, 16, seed=0).fit(data.base)
    np.testing.assert_array_equal(
        index.codes, reference.encode(data.base)
    )


def test_filtered_labels_generated_from_spec(setup):
    data, quantizer, graph = setup
    spec = IndexSpec(
        scenario=ScenarioSpec(
            kind="filtered", params={"num_labels": 3, "label_seed": 7}
        )
    )
    a = build(spec, data=data.base, graph=graph, quantizer=quantizer)
    b = build(spec, data=data.base, graph=graph, quantizer=quantizer)
    np.testing.assert_array_equal(a.labels, b.labels)
    assert set(np.unique(a.labels)) <= {0, 1, 2}


def test_rpq_quantizer_with_graph_free_scenario():
    # streaming has needs_graph=False, but RPQ still trains against a
    # graph over the dataset — the unsharded path must build one.
    spec = IndexSpec(
        dataset=DatasetSpec(name="sift", n_base=150, n_queries=4, seed=0),
        graph=GraphSpec(kind="vamana", params={"r": 8, "search_l": 16}),
        quantizer=QuantizerSpec(
            kind="rpq",
            num_chunks=8,
            num_codewords=8,
            params={
                "epochs": 1,
                "num_triplets": 32,
                "num_queries": 4,
                "records_per_query": 3,
            },
        ),
        scenario=ScenarioSpec(
            kind="streaming", params={"r": 8, "search_l": 16}
        ),
    )
    index = build(spec)
    assert isinstance(index, FreshVamanaIndex)
    assert index.num_vertices == 150


def test_scenario_param_typos_fail_loudly(setup):
    data, quantizer, graph = setup
    spec = IndexSpec(
        scenario=ScenarioSpec(
            kind="memory", params={"distance_mod": "sdc"}
        )
    )
    with pytest.raises(ValueError, match="unknown scenario params"):
        build(spec, data=data.base, graph=graph, quantizer=quantizer)
    with pytest.raises(ValueError, match="unknown scenario params"):
        build(
            IndexSpec(
                scenario=ScenarioSpec(
                    kind="streaming", params={"beam": 8}
                )
            ),
            data=data.base,
            quantizer=quantizer,
        )


def test_filtered_labels_override(setup):
    data, quantizer, graph = setup
    labels = np.arange(data.base.shape[0]) % 2
    spec = IndexSpec(scenario=ScenarioSpec(kind="filtered"))
    index = build(
        spec, data=data.base, graph=graph, quantizer=quantizer, labels=labels
    )
    np.testing.assert_array_equal(index.labels, labels)
