"""Tests for the feature extractor (Alg. 1 / Alg. 2) and the losses."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.core import (
    DifferentiableQuantizer,
    JointLoss,
    RoutingRecord,
    Triplet,
    decision_accuracy,
    neighborhood_loss,
    routing_loss,
    sample_routing_records,
    sample_triplets,
)
from repro.graphs import build_vamana

RNG = np.random.default_rng(41)


def make_setup(n=200, d=8, m=2, k=8, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=5.0, size=(6, d))
    x = centers[rng.integers(6, size=n)] + 0.4 * rng.normal(size=(n, d))
    graph = build_vamana(x, r=8, search_l=20, seed=seed)
    quant = DifferentiableQuantizer(d, m, k, seed=seed)
    quant.warm_start(x)
    return x, graph, quant


class TestTripletSampling:
    def test_counts_and_structure(self):
        x, graph, _ = make_setup()
        triplets = sample_triplets(
            graph, x, num_triplets=50, n_hops=2, k_pos=5, k_neg=10,
            rng=np.random.default_rng(0),
        )
        assert len(triplets) == 50
        for t in triplets:
            assert t.anchor != t.positive
            assert t.positive != t.negative

    def test_positive_closer_than_negative(self):
        x, graph, _ = make_setup()
        triplets = sample_triplets(
            graph, x, num_triplets=80, n_hops=2, k_pos=3, k_neg=10,
            rng=np.random.default_rng(1),
        )
        # Positives are drawn from a strictly nearer band than negatives
        # (per anchor), so on average d(a, p) < d(a, n).
        d_pos = np.mean([
            ((x[t.anchor] - x[t.positive]) ** 2).sum() for t in triplets
        ])
        d_neg = np.mean([
            ((x[t.anchor] - x[t.negative]) ** 2).sum() for t in triplets
        ])
        assert d_pos < d_neg

    def test_positive_in_top_kpos_of_neighborhood(self):
        x, graph, _ = make_setup()
        k_pos = 4
        triplets = sample_triplets(
            graph, x, num_triplets=30, n_hops=2, k_pos=k_pos, k_neg=8,
            rng=np.random.default_rng(2),
        )
        for t in triplets:
            hood = graph.n_hop_neighborhood(t.anchor, 2)
            d = ((x[hood] - x[t.anchor]) ** 2).sum(axis=1)
            top = set(hood[np.argsort(d)][:k_pos].tolist())
            assert t.positive in top

    def test_parameter_validation(self):
        x, graph, _ = make_setup(n=50)
        with pytest.raises(ValueError):
            sample_triplets(graph, x, num_triplets=0)
        with pytest.raises(ValueError):
            sample_triplets(graph, x, num_triplets=5, k_pos=0)


class TestRoutingRecords:
    def test_records_are_supervised(self):
        x, graph, quant = make_setup()
        queries = [x[i] + 0.05 for i in range(5)]
        records = sample_routing_records(
            graph,
            x,
            rotation=quant.rotation_matrix(),
            codebook=quant.codebook_numpy(),
            codes=quant.encode_hard(x),
            queries=queries,
            beam_width=8,
        )
        assert records, "expected at least one routing decision"
        for r in records:
            assert 0 <= r.oracle < len(r.candidates)
            assert r.chosen == 0  # closest unvisited candidate is expanded
            # Oracle really is the true-distance argmin.
            true_d = ((x[r.candidates] - r.query) ** 2).sum(axis=1)
            assert r.oracle == int(true_d.argmin())

    def test_max_records_per_query(self):
        x, graph, quant = make_setup()
        records = sample_routing_records(
            graph,
            x,
            rotation=quant.rotation_matrix(),
            codebook=quant.codebook_numpy(),
            codes=quant.encode_hard(x),
            queries=[x[0]],
            beam_width=8,
            max_records_per_query=3,
            rng=np.random.default_rng(0),
        )
        assert len(records) <= 3

    def test_decision_accuracy_bounds(self):
        x, graph, quant = make_setup()
        records = sample_routing_records(
            graph,
            x,
            rotation=quant.rotation_matrix(),
            codebook=quant.codebook_numpy(),
            codes=quant.encode_hard(x),
            queries=[x[i] for i in range(4)],
            beam_width=8,
        )
        acc = decision_accuracy(records)
        assert 0.0 <= acc <= 1.0
        assert decision_accuracy([]) == 1.0


class TestLosses:
    def test_neighborhood_loss_nonnegative_and_differentiable(self):
        x, graph, quant = make_setup()
        triplets = sample_triplets(
            graph, x, num_triplets=16, rng=np.random.default_rng(3)
        )
        loss = neighborhood_loss(quant, x, triplets, use_gumbel=False)
        assert loss.item() >= 0.0
        loss.backward()
        assert quant.rotation.params.grad is not None

    def test_neighborhood_loss_zero_when_margin_satisfied(self):
        # Anchor == positive reconstruction, distant negative, margin 0.
        x, graph, quant = make_setup()
        triplets = [Triplet(anchor=0, positive=0, negative=50)]
        loss = neighborhood_loss(quant, x, triplets, margin=0.0, use_gumbel=False)
        assert loss.item() <= 1e-9

    def test_routing_loss_decreases_for_better_model(self):
        x, graph, quant = make_setup()
        record = RoutingRecord(
            query=x[0],
            candidates=np.array([0, 50, 100]),
            chosen=0,
            oracle=0,
        )
        loss = routing_loss(quant, x, [record], use_gumbel=False)
        assert loss.item() >= 0.0
        # With huge tau the softmax flattens: NLL -> log(3).
        loss_high_tau = routing_loss(quant, x, [record], tau=1e6, use_gumbel=False)
        assert abs(loss_high_tau.item() - np.log(3)) < 0.05

    def test_loss_validation(self):
        x, graph, quant = make_setup()
        with pytest.raises(ValueError):
            neighborhood_loss(quant, x, [])
        with pytest.raises(ValueError):
            routing_loss(quant, x, [])
        record = RoutingRecord(x[0], np.array([0, 1]), 0, 0)
        with pytest.raises(ValueError):
            routing_loss(quant, x, [record], tau=0.0)

    def test_routing_loss_gradient_reaches_codebooks(self):
        x, graph, quant = make_setup()
        record = RoutingRecord(
            query=x[0], candidates=np.array([1, 2, 3]), chosen=0, oracle=1
        )
        loss = routing_loss(quant, x, [record], use_gumbel=False)
        loss.backward()
        assert any(b.grad is not None for b in quant.codebooks)


class TestJointLoss:
    def test_requires_at_least_one_component(self):
        with pytest.raises(ValueError):
            JointLoss(use_neighborhood=False, use_routing=False)

    def test_single_component_passthrough(self):
        j = JointLoss(use_neighborhood=True, use_routing=False)
        ln = Tensor(np.array(2.0))
        assert j.combine(None, ln).item() == 2.0
        j2 = JointLoss(use_neighborhood=False, use_routing=True)
        lr = Tensor(np.array(3.0))
        assert j2.combine(lr, None).item() == 3.0

    def test_missing_component_raises(self):
        j = JointLoss()
        with pytest.raises(ValueError):
            j.combine(None, Tensor(np.array(1.0)))
        with pytest.raises(ValueError):
            j.combine(Tensor(np.array(1.0)), None)

    def test_alpha_starts_at_one_and_adapts(self):
        j = JointLoss()
        assert j.alpha == pytest.approx(1.0)
        assert len(j.parameters()) == 2

    def test_combined_loss_backward_updates_log_vars(self):
        j = JointLoss()
        lr = Tensor(np.array(2.0))
        ln = Tensor(np.array(0.5))
        out = j.combine(lr, ln)
        out.backward()
        assert j.log_var_routing.grad is not None
        assert j.log_var_neighborhood.grad is not None
        # d/ds [exp(-s) L + s] = 1 - exp(-s) L; at s=0: 1 - L.
        np.testing.assert_allclose(j.log_var_routing.grad, [1.0 - 2.0])
        np.testing.assert_allclose(j.log_var_neighborhood.grad, [1.0 - 0.5])
