"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.dataset == "sift"
        assert args.graph == "hnsw"
        assert args.scenario == "memory"

    def test_rejects_unknown_graph(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--graph", "delaunay"])

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "table2"])
        assert args.name == "table2"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_shards_must_be_positive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--shards", "0"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "serve", "--shards", "-2"])

    def test_shard_backend_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--shard-backend", "rpc"])

    def test_shard_backend_requires_shards(self, capsys):
        # The flag would otherwise be silently ignored on an unsharded
        # index — fail loudly instead, before any expensive work.
        assert main(["demo", "--shard-backend", "process"]) == 2
        assert "--shards" in capsys.readouterr().err
        assert (
            main(["experiment", "serve", "--shard-backend", "process"]) == 2
        )
        assert "--shards" in capsys.readouterr().err


class TestCommands:
    def test_profiles(self, capsys):
        assert main(["profiles"]) == 0
        out = capsys.readouterr().out
        for name in ("sift", "deep", "gist", "ukbench", "bigann"):
            assert name in out

    def test_profiles_with_lid(self, capsys):
        assert main(["profiles", "--measure-lid", "--n-base", "400"]) == 0
        assert "measured LID" in capsys.readouterr().out

    def test_demo_memory(self, capsys):
        code = main(
            [
                "demo",
                "--dataset", "ukbench",
                "--n-base", "300",
                "--n-queries", "6",
                "--chunks", "4",
                "--codewords", "8",
                "--epochs", "1",
                "--beam", "16",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "RPQ" in out and "PQ" in out

    def test_demo_hybrid(self, capsys):
        code = main(
            [
                "demo",
                "--dataset", "ukbench",
                "--scenario", "hybrid",
                "--graph", "vamana",
                "--n-base", "300",
                "--n-queries", "6",
                "--chunks", "4",
                "--codewords", "8",
                "--epochs", "1",
                "--beam", "16",
            ]
        )
        assert code == 0
        assert "hybrid scenario" in capsys.readouterr().out

    def test_experiment_fig4(self, capsys):
        code = main(
            ["experiment", "fig4", "--dataset", "ukbench", "--n-base", "400"]
        )
        assert code == 0
        assert "imbalance" in capsys.readouterr().out

    def test_experiment_serve(self, capsys):
        code = main(
            [
                "experiment",
                "serve",
                "--n-base",
                "300",
                "--batch-size",
                "16",
                "--shards",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Dynamic-batching serving" in out
        assert "speedup over per-query serving" in out


class TestIndexCommand:
    def test_build_describe_search_round_trip(self, tmp_path, capsys):
        out_dir = str(tmp_path / "idx")
        code = main(
            [
                "index", "build", "--out", out_dir,
                "--n-base", "250", "--n-queries", "6",
                "--codewords", "16",
            ]
        )
        assert code == 0
        assert "built scenario=memory" in capsys.readouterr().out

        assert main(["index", "describe", "--dir", out_dir]) == 0
        out = capsys.readouterr().out
        assert "scenario: memory" in out
        assert "format_version" in out or "spec:" in out

        assert main(
            ["index", "search", "--dir", out_dir, "--k", "5"]
        ) == 0
        assert "recall@5" in capsys.readouterr().out

    @pytest.mark.slow
    def test_sharded_search_with_process_backend(self, tmp_path, capsys):
        out_dir = str(tmp_path / "idx")
        code = main(
            [
                "index", "build", "--out", out_dir,
                "--n-base", "250", "--n-queries", "6",
                "--codewords", "16", "--shards", "2",
            ]
        )
        assert code == 0
        assert "shards=2" in capsys.readouterr().out
        assert main(
            [
                "index", "search", "--dir", out_dir,
                "--k", "5", "--shard-backend", "process",
            ]
        ) == 0
        assert "recall@5" in capsys.readouterr().out

    def test_shard_backend_flag_rejects_unsharded_dir(
        self, tmp_path, capsys
    ):
        import numpy as np

        from repro.api import save_index
        from repro.graphs import build_vamana
        from repro.index import MemoryIndex
        from repro.quantization import ProductQuantizer

        rng = np.random.default_rng(0)
        x = rng.normal(size=(80, 16))
        quantizer = ProductQuantizer(4, 8, seed=0).fit(x)
        graph = build_vamana(x, r=4, search_l=8, seed=0)
        out_dir = str(tmp_path / "idx")
        save_index(MemoryIndex(graph, quantizer, x), out_dir)
        code = main(
            [
                "index", "search", "--dir", out_dir,
                "--shard-backend", "process",
            ]
        )
        assert code == 2
        assert "unsharded" in capsys.readouterr().err

    def test_build_refuses_unpersistable_catalyst(self, tmp_path, capsys):
        code = main(
            [
                "index", "build",
                "--out", str(tmp_path / "idx"),
                "--quantizer", "catalyst",
                "--n-base", "250",
            ]
        )
        assert code == 2
        assert "cannot be persisted" in capsys.readouterr().err

    def test_search_refuses_mismatched_dataset(self, tmp_path, capsys):
        import numpy as np

        from repro.api import IndexSpec, build, save_index
        from repro.datasets import load

        # Built from explicit data: the default spec's dataset section
        # (n_base=2000) does not describe these 250 rows.
        data = load("sift", n_base=250, n_queries=4, seed=0)
        index = build(
            IndexSpec(), data=data.base,
            graph=None, quantizer=None,
        )
        assert np.asarray(index.codes).shape[0] == 250
        out_dir = str(tmp_path / "idx")
        save_index(index, out_dir)
        assert main(["index", "search", "--dir", out_dir]) == 2
        err = capsys.readouterr().err
        assert "refusing to evaluate" in err
