"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.dataset == "sift"
        assert args.graph == "hnsw"
        assert args.scenario == "memory"

    def test_rejects_unknown_graph(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--graph", "delaunay"])

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "table2"])
        assert args.name == "table2"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_shards_must_be_positive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--shards", "0"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "serve", "--shards", "-2"])


class TestCommands:
    def test_profiles(self, capsys):
        assert main(["profiles"]) == 0
        out = capsys.readouterr().out
        for name in ("sift", "deep", "gist", "ukbench", "bigann"):
            assert name in out

    def test_profiles_with_lid(self, capsys):
        assert main(["profiles", "--measure-lid", "--n-base", "400"]) == 0
        assert "measured LID" in capsys.readouterr().out

    def test_demo_memory(self, capsys):
        code = main(
            [
                "demo",
                "--dataset", "ukbench",
                "--n-base", "300",
                "--n-queries", "6",
                "--chunks", "4",
                "--codewords", "8",
                "--epochs", "1",
                "--beam", "16",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "RPQ" in out and "PQ" in out

    def test_demo_hybrid(self, capsys):
        code = main(
            [
                "demo",
                "--dataset", "ukbench",
                "--scenario", "hybrid",
                "--graph", "vamana",
                "--n-base", "300",
                "--n-queries", "6",
                "--chunks", "4",
                "--codewords", "8",
                "--epochs", "1",
                "--beam", "16",
            ]
        )
        assert code == 0
        assert "hybrid scenario" in capsys.readouterr().out

    def test_experiment_fig4(self, capsys):
        code = main(
            ["experiment", "fig4", "--dataset", "ukbench", "--n-base", "400"]
        )
        assert code == 0
        assert "imbalance" in capsys.readouterr().out

    def test_experiment_serve(self, capsys):
        code = main(
            [
                "experiment",
                "serve",
                "--n-base",
                "300",
                "--batch-size",
                "16",
                "--shards",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Dynamic-batching serving" in out
        assert "speedup over per-query serving" in out
