"""Network tier: framing edge cases, shard workers, gateway, parity.

Three layers under test (see ``docs/architecture.md``, "Network
tier"):

* the versioned frame codec — malformed input (bad magic/version,
  oversized payloads, truncated streams, trailing bytes) must fail
  loudly and typed, and every codec round-trips bitwise;
* the worker/client transport — an in-thread ``ShardServer`` answers
  the same buffers the pipe backend ships, worker death surfaces as
  ``ReplicaDied``, and a mid-stream disconnect is distinguished from
  a clean close;
* the asyncio gateway — bitwise identity with in-process serving,
  no cross-delivered replies under concurrent clients, bounded
  per-connection inflight (backpressure), and graceful SIGTERM
  drains (worker and gateway CLI subprocesses exit 0).

The slow lane pins the acceptance matrix: ``NetClient`` → gateway →
socket shard workers against the in-process ``ShardedIndex`` on all
five scenarios, and SIGKILL chaos over a replicated socket fleet
with zero failed requests.
"""

from __future__ import annotations

import contextlib
import os
import signal
import socket
import struct
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.api import (
    DatasetSpec,
    GraphSpec,
    IndexSpec,
    QuantizerSpec,
    ScenarioSpec,
    SearchRequest,
    ShardingSpec,
    build,
    load_index,
    save_index,
)
from repro.datasets import load
from repro.graphs import build_vamana
from repro.index import MemoryIndex
from repro.quantization import ProductQuantizer
from repro.serving import ShardedIndex
from repro.serving.net import (
    GatewayThread,
    LocalShardWorker,
    NetClient,
    ShardClient,
    ShardServer,
    ShardService,
    framing,
)
from repro.serving.replication import ReplicaDied

# ----------------------------------------------------------------------
# Shared fixtures / helpers
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def setup():
    data = load("sift", n_base=160, n_queries=6, seed=5)
    quantizer = ProductQuantizer(8, 16, seed=0).fit(data.train)
    return data, quantizer


def build_memory(x, quantizer):
    return MemoryIndex(
        build_vamana(x, r=8, search_l=20, seed=0), quantizer, x
    )


@pytest.fixture(scope="module")
def memory_index(setup):
    data, quantizer = setup
    return build_memory(data.base, quantizer)


VOLATILE_COUNTERS = {"table_cache_hits", "workspace_reused"}


def assert_responses_identical(a, b):
    np.testing.assert_array_equal(a.ids, b.ids)
    np.testing.assert_array_equal(a.distances, b.distances)
    np.testing.assert_array_equal(a.counts, b.counts)
    # The gateway path runs through the dynamic batcher, which stamps
    # wall-clock ``batcher_*`` timing counters onto its responses, and
    # the ADC-table/workspace cache counters depend on per-process
    # warm-up history; the work counters must still match bitwise.
    a_counters = {
        k: v
        for k, v in a.counters.items()
        if not k.startswith("batcher_") and k not in VOLATILE_COUNTERS
    }
    b_counters = {
        k: v
        for k, v in b.counters.items()
        if not k.startswith("batcher_") and k not in VOLATILE_COUNTERS
    }
    assert set(a_counters) == set(b_counters)
    for name in a_counters:
        np.testing.assert_array_equal(
            a_counters[name], b_counters[name], err_msg=name
        )


def reader_over(blob: bytes):
    """A ``read_exactly`` callable over an in-memory byte stream,
    honoring the stream contract: ``ConnectionClosed`` when exhausted
    before any byte, ``FrameTruncated`` on a partial read."""
    view = memoryview(blob)
    pos = 0

    def read_exactly(n: int) -> bytes:
        nonlocal pos
        if pos >= len(view) and n > 0:
            raise framing.ConnectionClosed("stream exhausted")
        chunk = bytes(view[pos : pos + n])
        if len(chunk) != n:
            raise framing.FrameTruncated(f"{len(chunk)} of {n} bytes")
        pos += n
        return chunk

    return read_exactly


@contextlib.contextmanager
def inproc_server(index, dirpath=None, **server_kwargs):
    """An in-thread ``ShardServer`` (no subprocess) for transport tests."""
    server = ShardServer(
        ShardService(index, dirpath=dirpath), **server_kwargs
    )
    thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"poll_interval": 0.02},
        daemon=True,
    )
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


def endpoint_of(server: ShardServer) -> str:
    host, port = server.address
    return f"{host}:{port}"


# ----------------------------------------------------------------------
# Frame codec: round-trips and malformed-input rejection
# ----------------------------------------------------------------------


class TestFraming:
    @pytest.mark.parametrize(
        "dtype", ["float64", "float32", "int64", "int32", "uint8", "bool"]
    )
    def test_ndarray_round_trip_bitwise(self, dtype):
        rng = np.random.default_rng(3)
        array = (rng.standard_normal((5, 7)) * 100).astype(dtype)
        decoded = framing.decode_ndarray(framing.encode_ndarray(array))
        assert decoded.dtype == array.dtype
        assert decoded.shape == array.shape
        np.testing.assert_array_equal(decoded, array)
        # A non-contiguous view still encodes its logical contents.
        sliced = array[::2, ::3]
        np.testing.assert_array_equal(
            framing.decode_ndarray(framing.encode_ndarray(sliced)), sliced
        )

    def test_object_dtype_rejected(self):
        with pytest.raises(framing.ProtocolError, match="object"):
            framing.encode_ndarray(np.array([object()], dtype=object))

    def test_bad_magic_rejected(self):
        blob = bytearray(framing.encode_message("ping"))
        blob[:4] = b"EVIL"
        with pytest.raises(framing.ProtocolError, match="magic"):
            framing.decode_message(bytes(blob))

    def test_bad_version_rejected(self):
        blob = bytearray(framing.encode_message("ping"))
        blob[4] = framing.PROTOCOL_VERSION + 1
        with pytest.raises(framing.ProtocolError, match="version"):
            framing.decode_message(bytes(blob))

    def test_unknown_msg_type_rejected(self):
        blob = bytearray(framing.encode_message("ping"))
        blob[5] = 99
        with pytest.raises(framing.ProtocolError):
            framing.decode_message(bytes(blob))

    def test_oversized_payload_rejected_before_read(self):
        # A header declaring a payload beyond the cap must be rejected
        # from the header alone — never allocated or read.
        header = struct.pack(
            ">4sBBHI",
            framing.MAGIC,
            framing.PROTOCOL_VERSION,
            framing.MSG_JSON,
            0,
            2**31,
        )
        with pytest.raises(framing.ProtocolError, match="frame"):
            framing.parse_header(header, max_frame_bytes=1024)
        # And a legitimate message is refused under a smaller cap.
        blob = framing.encode_message(
            "search", arrays={"queries": np.zeros((64, 16))}
        )
        with pytest.raises(framing.ProtocolError):
            framing.decode_message(blob, max_frame_bytes=128)

    def test_clean_eof_vs_truncation(self):
        blob = framing.encode_message(
            "search", arrays={"queries": np.zeros((2, 3))}
        )
        # Clean close at a message boundary: ConnectionClosed.
        with pytest.raises(framing.ConnectionClosed):
            framing.read_message(reader_over(b""))
        # Cut inside the first header, inside a payload, and between
        # the JSON frame and its announced ndarray frame: all
        # FrameTruncated (a subtype of ProtocolError).
        for cut in (3, framing.HEADER_SIZE + 2, len(blob) - 4):
            with pytest.raises(framing.FrameTruncated):
                framing.read_message(reader_over(blob[:cut]))
        assert issubclass(framing.FrameTruncated, framing.ProtocolError)

    def test_trailing_bytes_rejected(self):
        blob = framing.encode_message("ping")
        with pytest.raises(framing.ProtocolError, match="trail"):
            framing.decode_message(blob + b"\x00")

    def test_error_codec_reconstructs_type_and_traceback(self):
        try:
            raise ValueError("k must be >= 1")
        except ValueError as exc:
            blob = framing.encode_error(exc)
        rebuilt = framing.decode_error(framing.decode_message(blob))
        assert isinstance(rebuilt, ValueError)
        assert "k must be >= 1" in str(rebuilt)
        assert "Traceback" in rebuilt.remote_traceback
        assert "ValueError" in rebuilt.remote_traceback

    def test_error_codec_degrades_unknown_types(self):
        class HomegrownError(Exception):
            pass

        blob = framing.encode_error(HomegrownError("odd"))
        rebuilt = framing.decode_error(framing.decode_message(blob))
        # Not importable on the allowlist -> the typed stand-in.
        assert isinstance(rebuilt, framing.RemoteWorkerError)
        assert "HomegrownError" in str(rebuilt)

    def test_search_request_response_round_trip(self):
        rng = np.random.default_rng(0)
        request = SearchRequest(
            queries=rng.standard_normal((4, 8)),
            k=7,
            beam_width=19,
            labels=np.array([0, 1, 0, 2]),
            max_beam_width=64,
        )
        blob = framing.encode_search_request(request, request_id=41)
        rid, decoded = framing.decode_search_request(
            framing.decode_message(blob)
        )
        assert rid == 41
        np.testing.assert_array_equal(decoded.queries, request.queries)
        np.testing.assert_array_equal(decoded.labels, request.labels)
        assert (decoded.k, decoded.beam_width, decoded.max_beam_width) == (
            7,
            19,
            64,
        )

        from repro.api.protocol import SearchResponse

        response = SearchResponse(
            ids=rng.integers(0, 100, size=(4, 7)),
            distances=rng.standard_normal((4, 7)),
            counts=np.full(4, 7, dtype=np.int64),
            counters={"hops": rng.integers(0, 9, size=4)},
        )
        blob = framing.encode_search_response(response, request_id=41)
        rid, decoded = framing.decode_search_response(
            framing.decode_message(blob)
        )
        assert rid == 41
        assert_responses_identical(response, decoded)


# ----------------------------------------------------------------------
# Worker transport: in-thread server + ShardClient
# ----------------------------------------------------------------------


class TestShardTransport:
    def test_ping_search_parity_and_remote_errors(self, setup, memory_index):
        data, _ = setup
        with inproc_server(memory_index) as server:
            with ShardClient(endpoint_of(server)) as client:
                client.ping()
                expected = memory_index.search_batch(
                    data.queries, k=5, beam_width=16
                )
                got = client.search(data.queries, 5, 16, {})
                assert type(got) is type(expected)
                np.testing.assert_array_equal(got.ids, expected.ids)
                np.testing.assert_array_equal(
                    got.distances, expected.distances
                )
                # A worker-side failure comes back typed, with the
                # remote traceback attached, and the connection stays
                # usable for the next request.
                with pytest.raises(TypeError) as excinfo:
                    client.search(data.queries, 5, 16, {"labels": 1})
                assert excinfo.value.__cause__ is not None
                client.ping()

    def test_garbage_input_gets_error_frame_not_worker_death(
        self, setup, memory_index
    ):
        data, _ = setup
        with inproc_server(memory_index) as server:
            host, port = server.address
            with socket.create_connection((host, port), timeout=10) as sock:
                sock.sendall(b"NOTAFRAME-------")
                message = framing.read_message_from_socket(sock)
                kind, payload = framing.reply_payload(message)
                assert kind == "error"
                assert sock.recv(1) == b""  # stream unframed: hang up
            # The worker survives for well-formed clients.
            with ShardClient(endpoint_of(server)) as client:
                client.ping()

    def test_dead_worker_surfaces_replica_died(self, memory_index):
        with inproc_server(memory_index) as server:
            endpoint = endpoint_of(server)
        # Server is gone; a fast-backoff client must give up typed.
        client = ShardClient(
            endpoint, max_retries=1, backoff_base_s=0.01,
            connect_timeout_s=1.0,
        )
        with pytest.raises(ReplicaDied, match="connect"):
            client.ping()

    def test_mid_stream_disconnect_is_replica_died(self):
        # A hand-rolled server that answers with *half* a frame and
        # hangs up mid-response: the client must not hang or mis-frame,
        # it must surface ReplicaDied (chained from FrameTruncated).
        reply = framing.encode_message("pong")
        listener = socket.create_server(("127.0.0.1", 0))
        host, port = listener.getsockname()[:2]

        def half_answer():
            conn, _ = listener.accept()
            with conn:
                framing.read_message_from_socket(conn)
                conn.sendall(reply[: len(reply) - 3])

        thread = threading.Thread(target=half_answer, daemon=True)
        thread.start()
        try:
            with ShardClient(f"{host}:{port}", read_timeout_s=10.0) as client:
                with pytest.raises(ReplicaDied) as excinfo:
                    client.ping()
            assert isinstance(
                excinfo.value.__cause__, framing.FrameTruncated
            )
        finally:
            thread.join(timeout=10)
            listener.close()

    def test_socket_backend_parity_and_invalidate_guard(self, setup):
        data, quantizer = setup
        sharded = ShardedIndex.build(
            data.base, 2, lambda xs: build_memory(xs, quantizer)
        )
        request = SearchRequest(queries=data.queries, k=5, beam_width=16)
        expected = sharded.search(request)
        with contextlib.ExitStack() as stack:
            servers = [
                stack.enter_context(inproc_server(shard))
                for shard in sharded._shards
            ]
            sharded.set_backend(
                "socket", endpoints=[endpoint_of(s) for s in servers]
            )
            try:
                assert sharded.backend == "socket"
                assert_responses_identical(expected, sharded.search(request))
                rows = sharded.fleet_status()
                assert [r["endpoint"] for r in rows] == [
                    endpoint_of(s) for s in servers
                ]
                # Streaming writes cannot re-ship remote state.
                with pytest.raises(RuntimeError, match="wire"):
                    sharded._backend.invalidate(0)
            finally:
                sharded.close()
                sharded.set_backend("thread")

    def test_spec_round_trip_carries_endpoints(self):
        spec = IndexSpec(
            sharding=ShardingSpec(
                num_shards=2,
                backend="socket",
                endpoints=["127.0.0.1:7001", "127.0.0.1:7002"],
            )
        )
        restored = IndexSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.sharding.endpoints == [
            "127.0.0.1:7001",
            "127.0.0.1:7002",
        ]
        with pytest.raises(ValueError, match="endpoints"):
            build(IndexSpec(sharding=ShardingSpec(
                num_shards=2, backend="socket"
            )))
        with pytest.raises(ValueError, match="socket"):
            build(IndexSpec(sharding=ShardingSpec(
                num_shards=2, backend="thread",
                endpoints=["127.0.0.1:7001", "127.0.0.1:7002"],
            )))


# ----------------------------------------------------------------------
# Gateway: identity, concurrency, backpressure, error frames
# ----------------------------------------------------------------------


class TestGateway:
    def test_identity_with_in_process_serving(self, setup, memory_index):
        data, _ = setup
        request = SearchRequest(queries=data.queries, k=5, beam_width=16)
        expected = memory_index.search(request)
        with GatewayThread(memory_index) as gw:
            with NetClient(gw.connect) as client:
                assert_responses_identical(expected, client.search(request))

    def test_concurrent_clients_no_cross_delivery(self, setup, memory_index):
        data, _ = setup
        reference = memory_index.search(
            SearchRequest(queries=data.queries, k=5, beam_width=16)
        )
        errors: list = []

        def hammer(row: int) -> None:
            try:
                with NetClient(gw.connect) as client:
                    request = SearchRequest(
                        queries=data.queries[row : row + 1],
                        k=5,
                        beam_width=16,
                    )
                    futures = [
                        client.submit_request(request) for _ in range(6)
                    ]
                    for future in futures:
                        response = future.result(timeout=60)
                        np.testing.assert_array_equal(
                            response.ids[0], reference.ids[row]
                        )
                        np.testing.assert_array_equal(
                            response.distances[0], reference.distances[row]
                        )
            except BaseException as exc:  # surfaced after join
                errors.append((row, exc))

        with GatewayThread(memory_index) as gw:
            threads = [
                threading.Thread(target=hammer, args=(row,))
                for row in range(data.queries.shape[0])
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            stats = gw.gateway.stats
            assert stats.requests_total == 6 * data.queries.shape[0]
        assert errors == []

    def test_backpressure_bounds_per_connection_inflight(
        self, setup, memory_index
    ):
        data, _ = setup
        cap = 3
        request = SearchRequest(
            queries=data.queries[:1], k=5, beam_width=16
        )
        with GatewayThread(
            memory_index, max_inflight_per_conn=cap, max_wait_ms=0.5
        ) as gw:
            with NetClient(gw.connect) as client:
                futures = [client.submit_request(request) for _ in range(24)]
                for future in futures:
                    future.result(timeout=60)
            stats = gw.gateway.stats
            assert stats.requests_total == 24
            # The semaphore is the bounded write queue: the gateway
            # never admits more than `cap` requests from one
            # connection, no matter how many the client floods.
            assert 1 <= stats.peak_inflight <= cap

    def test_error_frames_carry_remote_traceback(self, setup, memory_index):
        data, _ = setup
        bad = SearchRequest(
            queries=data.queries, k=5, beam_width=16, labels=1
        )
        good = SearchRequest(queries=data.queries, k=5, beam_width=16)
        expected = memory_index.search(good)
        with GatewayThread(memory_index) as gw:
            with NetClient(gw.connect) as client:
                with pytest.raises(ValueError, match="filtered"):
                    client.search(bad)
                # The connection survives the failed request.
                assert_responses_identical(expected, client.search(good))
            assert gw.gateway.stats.errors_total >= 1

    def test_protocol_garbage_answers_error_frame_and_hangs_up(
        self, memory_index
    ):
        with GatewayThread(memory_index) as gw:
            host, port = gw.address
            with socket.create_connection((host, port), timeout=10) as sock:
                sock.sendall(b"\x00" * framing.HEADER_SIZE)
                message = framing.read_message_from_socket(sock)
                kind, _ = framing.reply_payload(message)
                assert kind == "error"
                assert sock.recv(1) == b""
            assert gw.gateway.stats.protocol_errors_total >= 1

    def test_client_disconnect_mid_flight_does_not_kill_gateway(
        self, setup, memory_index
    ):
        data, _ = setup
        request = SearchRequest(queries=data.queries, k=5, beam_width=16)
        expected = memory_index.search(request)
        with GatewayThread(memory_index) as gw:
            client = NetClient(gw.connect)
            for _ in range(4):
                client.submit_request(request)
            client.close()  # mid-flight disconnect
            # Gateway keeps serving fresh connections.
            with NetClient(gw.connect) as client2:
                assert_responses_identical(expected, client2.search(request))


# ----------------------------------------------------------------------
# Graceful shutdown (SIGTERM drains) — CLI subprocesses
# ----------------------------------------------------------------------


def _spawn_cli(args, cwd):
    env = dict(os.environ)
    src = os.path.join(cwd, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        cwd=cwd,
        env=env,
    )


def _await_listening(proc, marker: str, timeout_s: float = 120.0):
    deadline = time.monotonic() + timeout_s
    lines = []
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        lines.append(line)
        if marker in line:
            return line.strip().rsplit(" ", 1)[-1]
    proc.kill()
    pytest.fail(f"no {marker!r} line from CLI; output: {''.join(lines)}")


@pytest.fixture(scope="module")
def saved_index_dir(tmp_path_factory, setup):
    data, quantizer = setup
    index = build_memory(data.base, quantizer)
    dirpath = tmp_path_factory.mktemp("netidx") / "memory"
    save_index(index, dirpath)
    return str(dirpath)


REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.mark.slow
class TestGracefulShutdown:
    def test_serve_shard_sigterm_exits_zero(self, setup, saved_index_dir):
        data, _ = setup
        proc = _spawn_cli(
            ["serve-shard", "--dir", saved_index_dir], cwd=REPO_ROOT
        )
        try:
            endpoint = _await_listening(proc, "listening on")
            with ShardClient(endpoint) as client:
                client.ping()
                result = client.search(data.queries, 5, 16, {})
                assert result.ids.shape == (data.queries.shape[0], 5)
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

    def test_gateway_listen_sigterm_exits_zero(self, setup, saved_index_dir):
        data, _ = setup
        proc = _spawn_cli(
            [
                "experiment",
                "serve",
                "--listen",
                "127.0.0.1:0",
                "--dir",
                saved_index_dir,
            ],
            cwd=REPO_ROOT,
        )
        try:
            address = _await_listening(proc, "gateway listening on")
            with NetClient(address) as client:
                request = SearchRequest(
                    queries=data.queries, k=5, beam_width=16
                )
                response = client.search(request)
                assert response.num_queries == data.queries.shape[0]
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)


# ----------------------------------------------------------------------
# Acceptance matrix (slow lane): five scenarios + SIGKILL chaos
# ----------------------------------------------------------------------


SCENARIOS = [
    ("memory", {}, None),
    ("hybrid", {"io_width": 2}, None),
    ("l2r", {"seed": 1}, None),
    ("streaming", {"r": 8, "search_l": 16}, None),
    ("filtered", {"num_labels": 3, "label_seed": 1}, 1),
]


def scenario_spec(kind: str, params: dict) -> IndexSpec:
    return IndexSpec(
        dataset=DatasetSpec(name="sift", n_base=160, n_queries=6, seed=5),
        graph=GraphSpec(kind="vamana", params={"r": 8, "search_l": 16}),
        quantizer=QuantizerSpec(kind="pq", num_chunks=8, num_codewords=16),
        scenario=ScenarioSpec(kind=kind, params=params),
        sharding=ShardingSpec(num_shards=2),
    )


@pytest.mark.slow
@pytest.mark.parametrize(
    "kind,params,label",
    SCENARIOS,
    ids=[kind for kind, _, _ in SCENARIOS],
)
def test_gateway_over_socket_workers_matches_in_process(
    tmp_path, kind, params, label
):
    """The acceptance path: NetClient → gateway → socket shard workers
    is bitwise identical to the in-process ShardedIndex, per scenario."""
    spec = scenario_spec(kind, params)
    index = build(spec)
    queries = load("sift", n_base=160, n_queries=6, seed=5).queries
    request = SearchRequest(
        queries=queries, k=5, beam_width=16, labels=label
    )
    expected = index.search(request)
    save_index(index, tmp_path)
    index.close()

    with contextlib.ExitStack() as stack:
        workers = [
            stack.enter_context(
                LocalShardWorker(str(tmp_path / f"shard_{s:03d}"))
            )
            for s in range(2)
        ]
        remote = load_index(tmp_path)
        stack.callback(remote.close)
        remote.set_backend(
            "socket", endpoints=[w.endpoint for w in workers]
        )
        # Tier 1: the socket fan-out alone.
        assert_responses_identical(expected, remote.search(request))
        # Tier 2: the full network path through the gateway.
        gw = stack.enter_context(GatewayThread(remote))
        with NetClient(gw.connect) as client:
            assert_responses_identical(expected, client.search(request))


@pytest.mark.slow
def test_sigkill_socket_worker_fails_over_and_respawns(tmp_path, setup):
    """SIGKILL one worker of a replicated socket fleet mid-load: zero
    failed requests (in-request failover to the sibling), and the
    supervisor + external respawner heal the fleet."""
    data, quantizer = setup
    sharded = ShardedIndex.build(
        data.base, 2, lambda xs: build_memory(xs, quantizer)
    )
    expected = sharded.search_batch(data.queries, k=10, beam_width=24)
    save_index(sharded, tmp_path)

    with contextlib.ExitStack() as stack:
        # Two distinct workers per shard: killing one must leave a
        # live sibling to fail over to.
        workers = {}
        endpoints = []
        for s in range(2):
            row = []
            for _ in range(2):
                worker = stack.enter_context(
                    LocalShardWorker(str(tmp_path / f"shard_{s:03d}"))
                )
                workers[worker.endpoint] = worker
                row.append(worker.endpoint)
            endpoints.append(row)
        fleet = ShardedIndex(
            sharded._shards,
            global_ids=sharded._global_ids,
            backend="socket",
            replicas=2,
            endpoints=endpoints,
        )
        stack.callback(fleet.close)

        # Warm the fleet, then hand every replica its respawner (the
        # stand-in for a real deployment's systemd/k8s restart).
        np.testing.assert_array_equal(
            expected.ids,
            fleet.search_batch(data.queries, k=10, beam_width=24).ids,
        )
        for row in fleet._backend._fleet:
            for replica in row:
                replica._respawner = workers[replica.endpoint].respawn

        victim = workers[endpoints[0][0]]
        failed = 0
        for i in range(6):
            if i == 1:
                victim.kill()
            try:
                result = fleet.search_batch(
                    data.queries, k=10, beam_width=24
                )
            except Exception:
                failed += 1
                continue
            np.testing.assert_array_equal(expected.ids, result.ids)
            np.testing.assert_array_equal(
                expected.distances, result.distances
            )
        assert failed == 0

        # The supervisor runs respawn_and_verify -> the respawner
        # boots a fresh worker process on the same port.
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            rows = fleet.fleet_status()
            if all(r["alive"] for r in rows) and any(
                r["restarts"] > 0 for r in rows
            ):
                break
            time.sleep(0.1)
        else:
            pytest.fail(
                f"fleet did not heal: {fleet.fleet_status()}"
            )
        # And the healed fleet still answers identically.
        np.testing.assert_array_equal(
            expected.ids,
            fleet.search_batch(data.queries, k=10, beam_width=24).ids,
        )
