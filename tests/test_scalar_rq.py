"""Tests for the scalar (SQ8) and residual (RQ) quantizer baselines."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantization import (
    ProductQuantizer,
    ResidualQuantizer,
    ScalarQuantizer,
)

RNG = np.random.default_rng(101)


def clustered(n=400, d=12, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=4.0, size=(6, d))
    return centers[rng.integers(6, size=n)] + 0.3 * rng.normal(size=(n, d))


class TestScalarQuantizer:
    def test_encode_decode_shapes(self):
        x = clustered()
        sq = ScalarQuantizer().fit(x)
        codes = sq.encode(x[:10])
        assert codes.shape == (10, 12)
        assert codes.dtype == np.uint8
        assert sq.decode(codes).shape == (10, 12)
        assert sq.code_bytes_per_vector() == 12

    def test_reconstruction_error_bounded_by_grid(self):
        x = clustered()
        sq = ScalarQuantizer(num_levels=256).fit(x)
        recon = sq.decode(sq.encode(x))
        span = x.max(axis=0) - x.min(axis=0)
        cell = span / 256
        # Every coordinate lands in its own cell: error <= half a cell.
        assert (np.abs(recon - x) <= cell / 2 + 1e-9).all()

    def test_more_levels_less_error(self):
        x = clustered()
        coarse = ScalarQuantizer(num_levels=8).fit(x)
        fine = ScalarQuantizer(num_levels=128).fit(x)
        assert fine.quantization_error(x) < coarse.quantization_error(x)

    def test_out_of_range_values_clip(self):
        x = clustered()
        sq = ScalarQuantizer().fit(x)
        extreme = x[:1] * 100
        codes = sq.encode(extreme)
        assert codes.min() >= 0
        assert codes.max() <= 255

    def test_lookup_table_matches_reconstruction_distance(self):
        x = clustered(d=6)
        sq = ScalarQuantizer(num_levels=32).fit(x)
        q = RNG.normal(size=6)
        codes = sq.encode(x[:30])
        est = sq.lookup_table(q).distance(codes)
        recon = sq.decode(codes)
        np.testing.assert_allclose(
            est, ((recon - q) ** 2).sum(axis=1), atol=1e-9
        )

    def test_constant_dimension(self):
        x = np.ones((50, 4))
        sq = ScalarQuantizer().fit(x)
        recon = sq.decode(sq.encode(x))
        np.testing.assert_allclose(recon, x, atol=1e-6)


class TestResidualQuantizer:
    def test_shapes(self):
        x = clustered()
        rq = ResidualQuantizer(num_levels=3, num_codewords=16, seed=0).fit(x)
        codes = rq.encode(x[:7])
        assert codes.shape == (7, 3)
        assert rq.decode(codes).shape == (7, 12)

    def test_more_levels_reduce_error(self):
        x = clustered(n=600)
        errs = [
            ResidualQuantizer(num_levels=levels, num_codewords=16, seed=0)
            .fit(x)
            .quantization_error(x)
            for levels in (1, 2, 4)
        ]
        assert errs[0] > errs[1] > errs[2]

    def test_rq_beats_pq_at_same_bytes_on_correlated_data(self):
        # Classic result: additive codebooks capture global structure
        # that chunked codebooks miss when dimensions are correlated.
        rng = np.random.default_rng(5)
        latent = rng.normal(size=(600, 2))
        mixing = rng.normal(size=(2, 12))
        x = latent @ mixing + 0.05 * rng.normal(size=(600, 12))
        rq = ResidualQuantizer(num_levels=4, num_codewords=16, seed=0).fit(x)
        pq = ProductQuantizer(4, 16, seed=0).fit(x)
        assert rq.quantization_error(x) < pq.quantization_error(x)

    def test_decode_validation(self):
        x = clustered()
        rq = ResidualQuantizer(num_levels=3, num_codewords=8, seed=0).fit(x)
        with pytest.raises(ValueError):
            rq.decode(np.zeros((2, 5), dtype=np.uint8))

    def test_lookup_table_ranking_correlates(self):
        x = clustered(n=500)
        rq = ResidualQuantizer(num_levels=3, num_codewords=16, seed=0).fit(x)
        q = x[0] + 0.1
        codes = rq.encode(x)
        est = rq.lookup_table(q).distance(codes)
        true_d = ((x - q) ** 2).sum(axis=1)
        assert np.corrcoef(est, true_d)[0, 1] > 0.9

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            ResidualQuantizer().encode(np.zeros((2, 4)))


@settings(max_examples=10, deadline=None)
@given(st.integers(2, 64))
def test_property_scalar_levels_monotone(levels):
    x = clustered(n=150, d=5, seed=7)
    sq = ScalarQuantizer(num_levels=levels).fit(x)
    finer = ScalarQuantizer(num_levels=levels * 2).fit(x)
    assert finer.quantization_error(x) <= sq.quantization_error(x) + 1e-9
