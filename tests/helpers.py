"""Shared test utilities."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autodiff import Tensor


def numeric_gradient(
    fn: Callable[[Sequence[np.ndarray]], float],
    arrays: Sequence[np.ndarray],
    index: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central finite-difference gradient of ``fn`` w.r.t. ``arrays[index]``."""
    base = [np.array(a, dtype=np.float64) for a in arrays]
    grad = np.zeros_like(base[index])
    flat = base[index].reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = fn(base)
        flat[i] = original - eps
        lower = fn(base)
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2.0 * eps)
    return grad


def gradcheck(
    build: Callable[[Sequence[Tensor]], Tensor],
    arrays: Sequence[np.ndarray],
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> None:
    """Assert autodiff gradients match finite differences.

    ``build`` maps a list of Tensors to a scalar Tensor loss.
    """
    tensors = [Tensor(a, requires_grad=True) for a in arrays]
    loss = build(tensors)
    loss.backward()

    def evaluate(values: Sequence[np.ndarray]) -> float:
        fresh = [Tensor(v, requires_grad=True) for v in values]
        return build(fresh).item()

    for i, tensor in enumerate(tensors):
        expected = numeric_gradient(evaluate, arrays, i)
        actual = tensor.grad if tensor.grad is not None else np.zeros_like(expected)
        np.testing.assert_allclose(
            actual,
            expected,
            atol=atol,
            rtol=rtol,
            err_msg=f"gradient mismatch for input {i}",
        )
