"""Tests for fused functional ops, expm, and optimizers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays
from scipy.linalg import expm as scipy_expm

from repro.autodiff import (
    Adam,
    OneCycleLR,
    SGD,
    Tensor,
    expm,
    gumbel_softmax,
    log_softmax,
    pairwise_sqdist,
    sample_gumbel,
    skew_symmetric_from_flat,
    softmax,
    sqdist,
)

from .helpers import gradcheck

RNG = np.random.default_rng(1)


class TestSoftmax:
    def test_softmax_values(self):
        x = Tensor([[0.0, 0.0], [1.0, 3.0]])
        s = softmax(x, axis=-1)
        np.testing.assert_allclose(s.data.sum(axis=-1), [1.0, 1.0])
        np.testing.assert_allclose(s.data[0], [0.5, 0.5])

    def test_softmax_gradient(self):
        gradcheck(
            lambda ts: (softmax(ts[0], axis=-1) * np.arange(4.0)).sum(),
            [RNG.normal(size=(3, 4))],
        )

    def test_softmax_stability(self):
        x = Tensor([[1000.0, 1000.0]])
        s = softmax(x)
        np.testing.assert_allclose(s.data, [[0.5, 0.5]])

    def test_log_softmax_gradient(self):
        gradcheck(
            lambda ts: (log_softmax(ts[0], axis=-1) * np.arange(4.0)).sum(),
            [RNG.normal(size=(2, 4))],
        )

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(RNG.normal(size=(5, 6)))
        np.testing.assert_allclose(
            log_softmax(x).data, np.log(softmax(x).data), atol=1e-12
        )


class TestGumbelSoftmax:
    def test_noiseless_is_softmax(self):
        logits = Tensor(RNG.normal(size=(4, 5)))
        out = gumbel_softmax(logits, tau=1.0, rng=None)
        np.testing.assert_allclose(out.data, softmax(logits).data)

    def test_rows_sum_to_one(self):
        logits = Tensor(RNG.normal(size=(10, 8)))
        out = gumbel_softmax(logits, tau=0.5, rng=np.random.default_rng(3))
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(10))

    def test_hard_is_one_hot(self):
        logits = Tensor(RNG.normal(size=(6, 4)))
        out = gumbel_softmax(logits, tau=1.0, rng=np.random.default_rng(4), hard=True)
        assert set(np.unique(out.data)) <= {0.0, 1.0}
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(6))

    def test_hard_straight_through_gradient_flows(self):
        logits = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        out = gumbel_softmax(logits, tau=1.0, rng=np.random.default_rng(5), hard=True)
        (out * np.arange(4.0)).sum().backward()
        assert logits.grad is not None
        assert np.any(logits.grad != 0.0)

    def test_low_temperature_sharpens(self):
        logits = Tensor(np.array([[2.0, 0.0, -1.0]]))
        soft = gumbel_softmax(logits, tau=1.0, rng=None)
        sharp = gumbel_softmax(logits, tau=0.05, rng=None)
        assert sharp.data.max() > soft.data.max()

    def test_sample_gumbel_statistics(self):
        samples = sample_gumbel((200_000,), np.random.default_rng(6))
        # Standard Gumbel has mean = Euler-Mascheroni constant ~ 0.5772.
        assert abs(samples.mean() - 0.5772) < 0.02


class TestDistances:
    def test_pairwise_matches_naive(self):
        x = RNG.normal(size=(7, 5))
        c = RNG.normal(size=(4, 5))
        out = pairwise_sqdist(Tensor(x), Tensor(c)).data
        naive = ((x[:, None, :] - c[None, :, :]) ** 2).sum(axis=-1)
        np.testing.assert_allclose(out, naive, atol=1e-9)

    def test_pairwise_gradients(self):
        gradcheck(
            lambda ts: pairwise_sqdist(ts[0], ts[1]).sum(),
            [RNG.normal(size=(3, 4)), RNG.normal(size=(2, 4))],
        )

    def test_sqdist_gradients(self):
        gradcheck(
            lambda ts: sqdist(ts[0], ts[1]).sum(),
            [RNG.normal(size=(3, 4)), RNG.normal(size=(3, 4))],
        )

    @settings(max_examples=20, deadline=None)
    @given(
        arrays(np.float64, (4, 3), elements=st.floats(-2, 2)),
        arrays(np.float64, (5, 3), elements=st.floats(-2, 2)),
    )
    def test_property_pairwise_nonnegative(self, x, c):
        out = pairwise_sqdist(Tensor(x), Tensor(c)).data
        assert (out > -1e-8).all()


class TestExpm:
    def test_matches_scipy(self):
        a = RNG.normal(size=(5, 5))
        np.testing.assert_allclose(expm(Tensor(a)).data, scipy_expm(a))

    def test_gradient(self):
        gradcheck(
            lambda ts: (expm(ts[0]) * RNG2_WEIGHTS).sum(),
            [0.1 * RNG.normal(size=(4, 4))],
            atol=1e-4,
        )

    def test_requires_square(self):
        with pytest.raises(ValueError):
            expm(Tensor(np.zeros((2, 3))))

    def test_skew_from_flat_is_skew(self):
        dim = 6
        flat = Tensor(RNG.normal(size=(dim * (dim - 1) // 2,)), requires_grad=True)
        a = skew_symmetric_from_flat(flat, dim)
        np.testing.assert_allclose(a.data, -a.data.T)

    def test_skew_from_flat_gradient(self):
        dim = 4
        n = dim * (dim - 1) // 2
        weights = RNG.normal(size=(dim, dim))
        gradcheck(
            lambda ts: (skew_symmetric_from_flat(ts[0], dim) * weights).sum(),
            [RNG.normal(size=(n,))],
        )

    def test_skew_flat_wrong_size(self):
        with pytest.raises(ValueError):
            skew_symmetric_from_flat(Tensor(np.zeros(5)), 4)

    def test_expm_of_skew_is_orthogonal(self):
        dim = 8
        flat = Tensor(RNG.normal(size=(dim * (dim - 1) // 2,)))
        r = expm(skew_symmetric_from_flat(flat, dim)).data
        np.testing.assert_allclose(r @ r.T, np.eye(dim), atol=1e-10)
        assert abs(np.linalg.det(r) - 1.0) < 1e-9


RNG2_WEIGHTS = np.random.default_rng(2).normal(size=(4, 4))


class TestOptim:
    @staticmethod
    def _quadratic_param():
        # Minimize ||p - target||^2; optimum is the target.
        target = np.array([1.0, -2.0, 3.0])
        p = Tensor(np.zeros(3), requires_grad=True)
        return p, target

    def test_sgd_converges(self):
        p, target = self._quadratic_param()
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            loss = ((p - Tensor(target)) ** 2.0).sum()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-4)

    def test_sgd_momentum_converges(self):
        p, target = self._quadratic_param()
        opt = SGD([p], lr=0.05, momentum=0.9)
        for _ in range(200):
            opt.zero_grad()
            ((p - Tensor(target)) ** 2.0).sum().backward()
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-3)

    def test_adam_converges(self):
        p, target = self._quadratic_param()
        opt = Adam([p], lr=0.1)
        for _ in range(400):
            opt.zero_grad()
            ((p - Tensor(target)) ** 2.0).sum().backward()
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-3)

    def test_adam_weight_decay_shrinks(self):
        p = Tensor(np.full(3, 10.0), requires_grad=True)
        opt = Adam([p], lr=0.5, weight_decay=1.0)
        for _ in range(100):
            opt.zero_grad()
            (p * 0.0).sum().backward()
            opt.step()
        assert np.abs(p.data).max() < 10.0

    def test_optimizer_rejects_non_grad_params(self):
        with pytest.raises(ValueError):
            SGD([Tensor([1.0])], lr=0.1)

    def test_optimizer_rejects_empty(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_one_cycle_shape(self):
        p = Tensor(np.zeros(1), requires_grad=True)
        opt = Adam([p], lr=1e-3)
        sched = OneCycleLR(opt, max_lr=1e-2, total_steps=100, pct_start=0.3)
        lrs = [sched.step() for _ in range(100)]
        peak = int(np.argmax(lrs))
        assert 25 <= peak <= 35  # warm-up ends around 30%
        assert lrs[-1] == pytest.approx(1e-2 * 0.2, rel=1e-6)
        assert max(lrs) == pytest.approx(1e-2, rel=1e-6)

    def test_one_cycle_validation(self):
        p = Tensor(np.zeros(1), requires_grad=True)
        opt = Adam([p], lr=1e-3)
        with pytest.raises(ValueError):
            OneCycleLR(opt, max_lr=1e-2, total_steps=0)
        with pytest.raises(ValueError):
            OneCycleLR(opt, max_lr=1e-2, total_steps=10, pct_start=1.5)
