"""Construction parity: lockstep-batched builds must produce
byte-identical graphs to sequential (``build_batch_size=1``) builds.

The speculative construction driver (:mod:`repro.engine.construction`)
only changes *when* construction-time searches run — any search whose
read adjacency lists were touched by an earlier insertion is re-run at
its sequential turn — so Vamana, HNSW, and NSG must emit exactly the
same edges at every batch size, including degenerate ones (batch of 1,
batch larger than the dataset).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load
from repro.graphs import build_hnsw, build_nsg, build_vamana
from repro.index import StreamingIndex
from repro.quantization import ProductQuantizer

# Heavyweight parity suite: every case rebuilds graphs twice.  Runs
# in tier-1 (`make test`) and the nightly CI lane, not the fast lane.
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def x():
    return load("sift", n_base=400, n_queries=1, seed=7).base


def assert_graphs_equal(a, b):
    assert a.num_vertices == b.num_vertices
    assert a.entry_point == b.entry_point
    for v, (na, nb) in enumerate(zip(a.adjacency, b.adjacency)):
        np.testing.assert_array_equal(na, nb, err_msg=f"vertex {v}")


def assert_hnsw_equal(a, b):
    assert_graphs_equal(a, b)
    assert a.max_level == b.max_level
    assert len(a.upper_layers) == len(b.upper_layers)
    for lvl, (la, lb) in enumerate(zip(a.upper_layers, b.upper_layers)):
        assert set(la) == set(lb), f"layer {lvl} vertex sets differ"
        for v in la:
            np.testing.assert_array_equal(
                la[v], lb[v], err_msg=f"layer {lvl} vertex {v}"
            )


class TestVamanaBuildParity:
    @pytest.mark.parametrize("batch_size", [2, 16, 32])
    def test_batched_equals_sequential(self, x, batch_size):
        sequential = build_vamana(
            x, r=10, search_l=20, seed=3, build_batch_size=1
        )
        batched = build_vamana(
            x, r=10, search_l=20, seed=3, build_batch_size=batch_size
        )
        assert_graphs_equal(sequential, batched)

    def test_batch_larger_than_dataset(self, x):
        small = x[:40]
        sequential = build_vamana(
            small, r=6, search_l=12, seed=0, build_batch_size=1
        )
        batched = build_vamana(
            small, r=6, search_l=12, seed=0, build_batch_size=1000
        )
        assert_graphs_equal(sequential, batched)

    def test_invalid_batch_size(self, x):
        with pytest.raises(ValueError):
            build_vamana(x[:20], r=4, search_l=8, build_batch_size=0)


class TestHnswBuildParity:
    @pytest.mark.parametrize("batch_size", [2, 16, 32])
    def test_batched_equals_sequential(self, x, batch_size):
        sequential = build_hnsw(
            x, m=6, ef_construction=24, seed=5, build_batch_size=1
        )
        batched = build_hnsw(
            x, m=6, ef_construction=24, seed=5, build_batch_size=batch_size
        )
        assert_hnsw_equal(sequential, batched)

    def test_batch_larger_than_dataset(self, x):
        small = x[:40]
        sequential = build_hnsw(
            small, m=4, ef_construction=12, seed=1, build_batch_size=1
        )
        batched = build_hnsw(
            small, m=4, ef_construction=12, seed=1, build_batch_size=1000
        )
        assert_hnsw_equal(sequential, batched)


class TestNsgBuildParity:
    @pytest.mark.parametrize("batch_size", [2, 32])
    def test_batched_equals_sequential(self, x, batch_size):
        sequential = build_nsg(
            x, knn_k=10, r=10, search_l=20, build_batch_size=1
        )
        batched = build_nsg(
            x, knn_k=10, r=10, search_l=20, build_batch_size=batch_size
        )
        assert_graphs_equal(sequential, batched)

    def test_batch_larger_than_dataset(self, x):
        small = x[:40]
        sequential = build_nsg(
            small, knn_k=6, r=6, search_l=12, build_batch_size=1
        )
        batched = build_nsg(
            small, knn_k=6, r=6, search_l=12, build_batch_size=1000
        )
        assert_graphs_equal(sequential, batched)

    def test_invalid_batch_size(self, x):
        with pytest.raises(ValueError):
            build_nsg(x[:20], knn_k=4, r=4, build_batch_size=0)


class TestStreamingInsertParity:
    def test_insert_batch_equals_scalar_inserts(self, x):
        quantizer = ProductQuantizer(8, 16, seed=0).fit(x)
        scalar = StreamingIndex(quantizer, dim=x.shape[1], r=8, search_l=16)
        for v in x[:150]:
            scalar.insert(v)
        batched = StreamingIndex(quantizer, dim=x.shape[1], r=8, search_l=16)
        ids = batched.insert_batch(x[:150])
        assert ids == list(range(150))
        assert scalar._entry == batched._entry
        assert scalar._adjacency == batched._adjacency

    def test_insert_batch_from_empty_and_tiny_windows(self, x):
        quantizer = ProductQuantizer(8, 16, seed=0).fit(x)
        a = StreamingIndex(
            quantizer, dim=x.shape[1], r=6, search_l=12, build_batch_size=1
        )
        a.insert_batch(x[:60])
        b = StreamingIndex(
            quantizer, dim=x.shape[1], r=6, search_l=12, build_batch_size=500
        )
        b.insert_batch(x[:60])
        assert a._adjacency == b._adjacency
        assert a._entry == b._entry

    def test_searches_after_batched_inserts_match(self, x):
        quantizer = ProductQuantizer(8, 16, seed=0).fit(x)
        index = StreamingIndex(quantizer, dim=x.shape[1], r=8, search_l=16)
        index.insert_batch(x[:120])
        scalars = [index.search(q, k=5, beam_width=16) for q in x[120:130]]
        batch = index.search_batch(x[120:130], k=5, beam_width=16)
        for i, scalar in enumerate(scalars):
            row = batch.row(i)
            np.testing.assert_array_equal(scalar.ids, row.ids)
            np.testing.assert_array_equal(scalar.distances, row.distances)
