"""Index persistence: save/load round-trips are bitwise identical.

Every scenario (plus a 4-shard ``ShardedIndex``) is saved, reloaded,
and pinned to answer the same :class:`~repro.api.SearchRequest` with
identical ids, distances, counts, and counters — the property that
makes the directory format safe to hand to another process (the
ROADMAP's process-backed shards).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    DatasetSpec,
    GraphSpec,
    IndexSpec,
    QuantizerSpec,
    ScenarioSpec,
    SearchRequest,
    ShardingSpec,
    build,
    describe_index,
    load_index,
    save_index,
    saved_spec,
)
from repro.datasets import load
from repro.graphs import (
    build_hnsw,
    build_nsg,
    build_vamana,
    load_graph,
    save_graph,
)
from repro.index import MemoryIndex
from repro.quantization import ProductQuantizer
from repro.serving import ShardedIndex

pytestmark = pytest.mark.slow


def base_spec(**scenario) -> IndexSpec:
    return IndexSpec(
        dataset=DatasetSpec(name="sift", n_base=220, n_queries=6, seed=4),
        graph=GraphSpec(kind="vamana", params={"r": 8, "search_l": 16}),
        quantizer=QuantizerSpec(kind="pq", num_chunks=8, num_codewords=16),
        scenario=ScenarioSpec(**scenario) if scenario else ScenarioSpec(),
    )


@pytest.fixture(scope="module")
def queries():
    return load("sift", n_base=220, n_queries=6, seed=4).queries


def assert_responses_identical(a, b):
    np.testing.assert_array_equal(a.ids, b.ids)
    np.testing.assert_array_equal(a.distances, b.distances)
    np.testing.assert_array_equal(a.counts, b.counts)
    assert set(a.counters) == set(b.counters)
    for name in a.counters:
        np.testing.assert_array_equal(a.counters[name], b.counters[name])


# ----------------------------------------------------------------------
# Graph serialization
# ----------------------------------------------------------------------


@pytest.mark.parametrize("kind", ["vamana", "hnsw", "nsg"])
def test_graph_round_trip_exact(tmp_path, kind):
    x = load("sift", n_base=150, n_queries=1, seed=2).base
    builders = {
        "vamana": lambda: build_vamana(x, r=8, search_l=16, seed=0),
        "hnsw": lambda: build_hnsw(x, m=6, ef_construction=24, seed=0),
        "nsg": lambda: build_nsg(x, knn_k=8, r=8, search_l=16, seed=0),
    }
    graph = builders[kind]()
    path = tmp_path / f"{kind}.npz"
    save_graph(graph, path)
    loaded = load_graph(path)
    assert type(loaded) is type(graph)
    assert loaded.entry_point == graph.entry_point
    assert loaded.name == graph.name
    assert len(loaded.adjacency) == len(graph.adjacency)
    for a, b in zip(loaded.adjacency, graph.adjacency):
        np.testing.assert_array_equal(a, b)
    if hasattr(graph, "upper_layers"):
        assert loaded.max_level == graph.max_level
        assert len(loaded.upper_layers) == len(graph.upper_layers)
        for la, lb in zip(loaded.upper_layers, graph.upper_layers):
            assert set(la) == set(lb)
            for v in la:
                np.testing.assert_array_equal(la[v], lb[v])


# ----------------------------------------------------------------------
# Per-scenario index round-trips
# ----------------------------------------------------------------------


SCENARIOS = [
    ("memory", {}),
    ("memory", {"distance_mode": "sdc"}),
    ("memory", {"storage_dtype": "float32"}),
    ("hybrid", {"io_width": 2}),
    ("hybrid", {"learned_routing": True, "l2r_seed": 3}),
    ("l2r", {"seed": 1}),
    ("streaming", {"r": 8, "search_l": 16}),
    ("filtered", {"num_labels": 3, "label_seed": 1}),
]


@pytest.mark.parametrize(
    "kind,params",
    SCENARIOS,
    ids=[
        f"{kind}-{'-'.join(map(str, params.values())) or 'default'}"
        for kind, params in SCENARIOS
    ],
)
def test_scenario_round_trip_bitwise(tmp_path, queries, kind, params):
    spec = base_spec(kind=kind, params=params)
    index = build(spec)
    request = SearchRequest(
        queries=queries,
        k=5,
        beam_width=16,
        labels=1 if kind == "filtered" else None,
    )
    live = index.search(request)
    save_index(index, tmp_path)
    loaded = load_index(tmp_path)
    assert type(loaded) is type(index)
    assert loaded.spec == spec
    assert_responses_identical(live, loaded.search(request))
    # The request path and the loaded index's legacy path agree too.
    if kind != "filtered":
        legacy = loaded.search_batch(queries, k=5, beam_width=16)
        np.testing.assert_array_equal(live.ids, legacy.ids)
        np.testing.assert_array_equal(live.distances, legacy.distances)


def test_sharded_round_trip_bitwise(tmp_path, queries):
    spec = base_spec()
    spec = IndexSpec(
        dataset=spec.dataset,
        graph=spec.graph,
        quantizer=spec.quantizer,
        sharding=ShardingSpec(num_shards=4),
    )
    index = build(spec)
    request = SearchRequest(queries=queries, k=5, beam_width=16)
    live = index.search(request)
    save_index(index, tmp_path)
    loaded = load_index(tmp_path)
    assert isinstance(loaded, ShardedIndex)
    assert loaded.num_shards == 4
    assert loaded.shard_sizes() == index.shard_sizes()
    assert loaded.spec == spec
    assert_responses_identical(live, loaded.search(request))


def test_sharded_round_trip_preserves_backend(tmp_path, queries):
    spec = base_spec()
    spec = IndexSpec(
        dataset=spec.dataset,
        graph=spec.graph,
        quantizer=spec.quantizer,
        sharding=ShardingSpec(num_shards=2, backend="process"),
    )
    index = build(spec)
    assert index.backend == "process"
    request = SearchRequest(queries=queries, k=5, beam_width=16)
    live = index.search(request)
    save_index(index, tmp_path)
    index.close()
    loaded = load_index(tmp_path)
    assert isinstance(loaded, ShardedIndex)
    assert loaded.backend == "process"
    assert loaded.spec == spec
    assert_responses_identical(live, loaded.search(request))
    # The loaded index can flip back to the thread backend in place.
    loaded.set_backend("thread")
    assert_responses_identical(live, loaded.search(request))
    loaded.close()


def test_streaming_round_trip_preserves_write_path(tmp_path, queries):
    spec = base_spec(kind="streaming", params={"r": 8, "search_l": 16})
    index = build(spec)
    index.delete(3)
    save_index(index, tmp_path)
    loaded = load_index(tmp_path)
    assert loaded.num_deleted == 1
    # Inserts continue identically on both sides (same graph state).
    a = index.insert_batch(queries[:2])
    b = loaded.insert_batch(queries[:2])
    assert a == b
    request = SearchRequest(queries=queries, k=5, beam_width=16)
    assert_responses_identical(index.search(request), loaded.search(request))
    assert index.consolidate() == loaded.consolidate()


def test_empty_streaming_round_trip_stays_empty(tmp_path, queries):
    from repro.index import FreshVamanaIndex

    data = load("sift", n_base=150, n_queries=2, seed=1)
    quantizer = ProductQuantizer(8, 16, seed=0).fit(data.train)
    index = FreshVamanaIndex(quantizer, dim=data.dim, r=8, search_l=16)
    save_index(index, tmp_path)
    loaded = load_index(tmp_path)
    assert loaded.num_vertices == 0
    assert loaded._adjacency == []
    # Inserting into the loaded empty index matches the live one.
    a = index.insert_batch(data.base[:20])
    b = loaded.insert_batch(data.base[:20])
    assert a == b
    assert index._adjacency == loaded._adjacency
    request = SearchRequest(queries=queries, k=5, beam_width=16)
    assert_responses_identical(index.search(request), loaded.search(request))


def test_streaming_sharded_insert_routing_survives(tmp_path, queries):
    spec = base_spec(kind="streaming", params={"r": 8, "search_l": 16})
    spec = IndexSpec(
        dataset=spec.dataset,
        graph=spec.graph,
        quantizer=spec.quantizer,
        scenario=spec.scenario,
        sharding=ShardingSpec(num_shards=3),
    )
    index = build(spec)
    save_index(index, tmp_path)
    loaded = load_index(tmp_path)
    # Global id allocation picks up where the saved index left off.
    assert loaded.insert_batch(queries[:3]) == index.insert_batch(queries[:3])


# ----------------------------------------------------------------------
# Directory metadata
# ----------------------------------------------------------------------


def test_hand_built_index_gets_synthesized_spec(tmp_path, queries):
    data = load("sift", n_base=220, n_queries=6, seed=4)
    quantizer = ProductQuantizer(8, 16, seed=0).fit(data.train)
    graph = build_vamana(data.base, r=8, search_l=16, seed=0)
    index = MemoryIndex(graph, quantizer, data.base)
    save_index(index, tmp_path)
    spec = saved_spec(tmp_path)
    assert spec is not None and spec.scenario.kind == "memory"
    loaded = load_index(tmp_path)
    request = SearchRequest(queries=queries, k=5, beam_width=16)
    assert_responses_identical(index.search(request), loaded.search(request))


def test_describe_index(tmp_path):
    index = build(base_spec())
    save_index(index, tmp_path)
    meta = describe_index(tmp_path)
    assert meta["scenario"] == "memory"
    assert meta["format_version"] == 1
    assert meta["state"]["distance_mode"] == "adc"


def test_load_rejects_non_index_directory(tmp_path):
    with pytest.raises(FileNotFoundError, match="index directory"):
        load_index(tmp_path)


def test_load_rejects_future_format(tmp_path):
    import json

    index = build(base_spec())
    save_index(index, tmp_path)
    meta_path = tmp_path / "index.json"
    meta = json.loads(meta_path.read_text())
    meta["format_version"] = 99
    meta_path.write_text(json.dumps(meta))
    with pytest.raises(ValueError, match="format version"):
        load_index(tmp_path)


def test_custom_table_transform_refuses_to_persist(tmp_path):
    data = load("sift", n_base=150, n_queries=2, seed=1)
    quantizer = ProductQuantizer(8, 16, seed=0).fit(data.train)
    graph = build_vamana(data.base, r=8, search_l=16, seed=0)
    from repro.index import DiskIndex

    index = DiskIndex(
        graph, quantizer, data.base, table_transform=lambda t: t
    )
    with pytest.raises(ValueError, match="custom table"):
        save_index(index, tmp_path)
