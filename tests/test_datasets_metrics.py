"""Tests for synthetic datasets, LID estimation, and metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    PROFILES,
    compute_ground_truth,
    generate,
    lid_mle,
    lid_two_nn,
    load,
)
from repro.metrics import QueryStats, recall_at_k, time_queries

RNG = np.random.default_rng(61)


class TestSynthetic:
    def test_all_profiles_generate(self):
        for name in PROFILES:
            data = load(name, n_base=200, n_queries=10, seed=0)
            assert data.base.shape == (200, PROFILES[name].dim)
            assert data.queries.shape == (10, PROFILES[name].dim)
            assert data.train.shape[0] == 100
            assert np.isfinite(data.base).all()

    def test_unknown_profile(self):
        with pytest.raises(KeyError):
            load("imagenet")

    def test_seed_determinism(self):
        a = load("sift", n_base=100, seed=5)
        b = load("sift", n_base=100, seed=5)
        np.testing.assert_array_equal(a.base, b.base)
        np.testing.assert_array_equal(a.queries, b.queries)

    def test_seeds_differ(self):
        a = load("sift", n_base=100, seed=1)
        b = load("sift", n_base=100, seed=2)
        assert np.abs(a.base - b.base).max() > 0

    def test_deep_profile_is_normalized(self):
        data = load("deep", n_base=150, seed=0)
        norms = np.linalg.norm(data.base, axis=1)
        np.testing.assert_allclose(norms, np.ones_like(norms), atol=1e-9)

    def test_variance_profile_is_imbalanced(self):
        # The decaying scale must leave unequal per-dimension variance
        # (otherwise Fig. 4 would have nothing to show).
        data = load("sift", n_base=500, seed=0)
        var = data.base.var(axis=0)
        assert var.max() / var.min() > 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            generate(PROFILES["sift"], n_base=1)

    def test_queries_held_out(self):
        data = load("sift", n_base=100, n_queries=10, seed=0)
        # No query row should exactly equal a base row.
        for q in data.queries:
            assert not (np.abs(data.base - q).sum(axis=1) < 1e-12).any()


class TestLID:
    def test_gaussian_lid_tracks_dimension(self):
        # LID of an isotropic Gaussian approaches its dimension.
        for d in (4, 8):
            x = RNG.normal(size=(1500, d))
            est = lid_mle(x, k=20)
            assert 0.5 * d < est < 1.8 * d

    def test_low_dimensional_manifold(self):
        # 2-D manifold embedded in 10-D: LID should be near 2, not 10.
        t = RNG.normal(size=(1200, 2))
        basis = RNG.normal(size=(2, 10))
        x = t @ basis
        est = lid_mle(x, k=20)
        assert est < 4.0

    def test_two_nn_agrees_roughly(self):
        x = RNG.normal(size=(2000, 5))
        mle = lid_mle(x, k=20)
        two = lid_two_nn(x)
        assert abs(mle - two) < 3.0

    def test_sampled_estimation(self):
        x = RNG.normal(size=(800, 6))
        full = lid_mle(x, k=15)
        sampled = lid_mle(x, k=15, sample=200, seed=0)
        assert abs(full - sampled) < 2.5

    def test_degenerate_data(self):
        x = np.ones((50, 4))
        assert lid_mle(x, k=5) == 0.0
        assert lid_two_nn(x) == 0.0

    def test_profile_lid_ordering_matches_paper(self):
        # Table 3: Ukbench (8.3) < Sift (16.6) <= Deep (17.6) < Gist (35).
        lids = {}
        for name in ("ukbench", "sift", "gist"):
            data = load(name, n_base=1200, seed=0)
            lids[name] = lid_mle(data.base, k=20, sample=400, seed=0)
        assert lids["ukbench"] < lids["sift"] < lids["gist"]


class TestGroundTruthAndRecall:
    def test_ground_truth_shapes(self):
        base = RNG.normal(size=(100, 5))
        queries = RNG.normal(size=(8, 5))
        gt = compute_ground_truth(base, queries, k=7)
        assert gt.ids.shape == (8, 7)
        assert gt.k == 7
        assert gt.num_queries == 8

    def test_recall_perfect_and_empty(self):
        gt = np.array([[0, 1, 2], [3, 4, 5]])
        assert recall_at_k([np.array([0, 1, 2]), np.array([3, 4, 5])], gt) == 1.0
        assert recall_at_k([np.array([9]), np.array([9])], gt) == 0.0

    def test_recall_partial(self):
        gt = np.array([[0, 1, 2, 3]])
        assert recall_at_k([np.array([0, 1, 7, 8])], gt) == 0.5

    def test_recall_order_invariant(self):
        gt = np.array([[0, 1, 2]])
        assert recall_at_k([np.array([2, 0, 1])], gt) == 1.0

    def test_recall_validation(self):
        with pytest.raises(ValueError):
            recall_at_k([np.array([0])], np.array([[0], [1]]))


class TestTimingAndCounters:
    def test_time_queries(self):
        calls = []
        timing = time_queries(lambda q: calls.append(q), [1, 2, 3])
        assert timing.num_queries == 3
        assert len(calls) == 3
        assert timing.qps > 0
        assert timing.mean_latency_ms >= 0

    def test_query_stats_aggregation(self):
        class R:
            def __init__(self, hops, comps, reads=0, io=0.0):
                self.hops = hops
                self.distance_computations = comps
                self.page_reads = reads
                self.simulated_io_us = io

        stats = QueryStats.aggregate([R(2, 10, 1, 100.0), R(4, 30, 3, 300.0)])
        assert stats.mean_hops == 3.0
        assert stats.mean_distance_computations == 20.0
        assert stats.mean_page_reads == 2.0
        assert stats.mean_io_us == 200.0

    def test_query_stats_without_io_fields(self):
        class R:
            hops = 5
            distance_computations = 9

        stats = QueryStats.aggregate([R(), R()])
        assert stats.mean_page_reads == 0.0

    def test_query_stats_empty(self):
        with pytest.raises(ValueError):
            QueryStats.aggregate([])
