"""Open-loop load generator: schedules, mixes, accounting, honesty.

The load harness exists to measure tail latency *without* coordinated
omission, so the tests here pin exactly the properties that make that
measurement trustworthy: schedules regenerate bit-for-bit under a
seed, the arrival process never depends on completion times (verified
with a deliberately slow fake backend), per-request accounting is
exact, and the percentile estimator matches the numpy reference.
Timing-dependent assertions use generous margins so the suite stays
deterministic on loaded CI runners.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro.datasets import load
from repro.graphs import build_vamana
from repro.index import MemoryIndex
from repro.loadgen import (
    ArrivalSchedule,
    BatcherFarm,
    LatencySummary,
    RequestMix,
    RequestProfile,
    bursty_schedule,
    find_knee,
    make_schedule,
    parse_mix,
    percentile,
    poisson_schedule,
    run_open_loop,
    summarize_run,
    trace_schedule,
    uniform_schedule,
    verify_outcomes,
)
from repro.loadgen.runner import LoadRunStats
from repro.quantization import ProductQuantizer


# ----------------------------------------------------------------------
# Arrival schedules
# ----------------------------------------------------------------------


class TestSchedules:
    def test_poisson_deterministic_under_seed(self):
        a = poisson_schedule(50.0, 200, seed=7)
        b = poisson_schedule(50.0, 200, seed=7)
        np.testing.assert_array_equal(a.offsets_s, b.offsets_s)

    def test_poisson_seed_changes_schedule(self):
        a = poisson_schedule(50.0, 200, seed=7)
        b = poisson_schedule(50.0, 200, seed=8)
        assert not np.array_equal(a.offsets_s, b.offsets_s)

    def test_poisson_mean_rate_near_nominal(self):
        s = poisson_schedule(100.0, 5000, seed=0)
        assert s.rate_qps == 100.0
        # Law of large numbers, generous tolerance.
        assert s.mean_rate_qps == pytest.approx(100.0, rel=0.15)

    def test_first_arrival_at_zero_and_monotone(self):
        for s in (
            poisson_schedule(40.0, 64, seed=1),
            uniform_schedule(40.0, 64),
            bursty_schedule(40.0, 64, seed=1),
        ):
            assert s.offsets_s[0] == 0.0
            assert (np.diff(s.offsets_s) >= 0).all()

    def test_uniform_is_perfectly_paced(self):
        s = uniform_schedule(10.0, 5)
        np.testing.assert_allclose(s.offsets_s, [0.0, 0.1, 0.2, 0.3, 0.4])

    def test_bursty_preserves_mean_rate(self):
        s = bursty_schedule(100.0, 20000, seed=0)
        assert s.mean_rate_qps == pytest.approx(100.0, rel=0.1)

    def test_bursty_is_burstier_than_poisson(self):
        # Hyperexponential gaps: coefficient of variation > 1 (Poisson's).
        b = bursty_schedule(100.0, 20000, seed=0)
        gaps = np.diff(b.offsets_s)
        cv = gaps.std() / gaps.mean()
        assert cv > 1.1

    def test_trace_schedule_replays_offsets(self):
        offsets = np.array([0.0, 0.5, 0.5, 2.0])
        s = trace_schedule(offsets)
        np.testing.assert_array_equal(s.offsets_s, offsets)
        assert np.isnan(s.rate_qps)

    def test_make_schedule_registry(self):
        for kind in ("poisson", "uniform", "bursty"):
            assert make_schedule(kind, 10.0, 8, seed=0).kind == kind
        with pytest.raises(KeyError, match="unknown arrival"):
            make_schedule("sawtooth", 10.0, 8)

    def test_validation(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            ArrivalSchedule(np.array([0.0, 2.0, 1.0]), kind="trace")
        with pytest.raises(ValueError, match="non-negative"):
            ArrivalSchedule(np.array([-1.0, 0.0]), kind="trace")
        with pytest.raises(ValueError, match="finite"):
            ArrivalSchedule(np.array([0.0, np.inf]), kind="trace")
        with pytest.raises(ValueError, match="non-empty"):
            ArrivalSchedule(np.array([]), kind="trace")
        with pytest.raises(ValueError, match="rate_qps"):
            poisson_schedule(0.0, 10)
        with pytest.raises(ValueError, match="num_requests"):
            poisson_schedule(10.0, 0)
        with pytest.raises(ValueError, match="burst_factor"):
            bursty_schedule(10.0, 10, burst_factor=1.0)
        with pytest.raises(ValueError, match="burst_fraction"):
            bursty_schedule(10.0, 10, burst_fraction=1.5)


# ----------------------------------------------------------------------
# Request mixes
# ----------------------------------------------------------------------


class TestMix:
    def test_assignment_deterministic_under_seed(self):
        mix = RequestMix()
        np.testing.assert_array_equal(
            mix.assign(500, seed=3), mix.assign(500, seed=3)
        )

    def test_assignment_follows_weights(self):
        mix = RequestMix(
            (
                RequestProfile(name="a", weight=3.0),
                RequestProfile(name="b", weight=1.0),
            )
        )
        counts = np.bincount(mix.assign(8000, seed=0), minlength=2)
        assert counts[0] / counts.sum() == pytest.approx(0.75, abs=0.05)

    def test_parse_mix_round_trip(self):
        mix = parse_mix("std:10:32:0.6,light:5:16:0.4")
        assert [p.name for p in mix.profiles] == ["std", "light"]
        assert mix.profiles[1].k == 5
        assert mix.profiles[1].beam_width == 16
        described = mix.describe()
        assert described[0]["weight"] == pytest.approx(0.6)

    def test_validation(self):
        with pytest.raises(ValueError, match="duplicate"):
            RequestMix(
                (RequestProfile(name="a"), RequestProfile(name="a"))
            )
        with pytest.raises(ValueError, match="at least one"):
            RequestMix(())
        with pytest.raises(ValueError, match="weight"):
            RequestProfile(name="a", weight=0.0)
        with pytest.raises(ValueError, match="bad mix entry"):
            parse_mix("std:10:32")


# ----------------------------------------------------------------------
# Percentile math
# ----------------------------------------------------------------------


class TestPercentiles:
    def test_matches_numpy_linear(self):
        rng = np.random.default_rng(0)
        values = rng.exponential(scale=5.0, size=1003)
        for q in (0.0, 25.0, 50.0, 90.0, 99.0, 99.9, 100.0):
            assert percentile(values, q) == pytest.approx(
                float(np.percentile(values, q)), rel=1e-12
            )

    def test_small_populations(self):
        assert percentile([7.0], 99.0) == 7.0
        assert percentile([1.0, 3.0], 50.0) == 2.0

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50.0)
        with pytest.raises(ValueError, match="q must be"):
            percentile([1.0], 101.0)

    def test_summary_matches_numpy(self):
        rng = np.random.default_rng(1)
        values = rng.gamma(2.0, 3.0, size=500)
        summary = LatencySummary.from_values_ms(values)
        assert summary.count == 500
        assert summary.p99_ms == pytest.approx(
            float(np.percentile(values, 99.0))
        )
        assert summary.p999_ms == pytest.approx(
            float(np.percentile(values, 99.9))
        )
        assert summary.max_ms == float(values.max())


# ----------------------------------------------------------------------
# Open-loop runner honesty (fake backends — no index needed)
# ----------------------------------------------------------------------


class _SlowTarget:
    """A backend that answers every request after a fixed delay.

    Completion is delivered from timer threads, so a dispatcher that
    (wrongly) waited for completions before submitting the next
    request would stretch the observed submission spacing to >= the
    service delay.  Records the wall-clock submit instants.
    """

    def __init__(self, delay_s: float):
        self.delay_s = delay_s
        self.submit_times: list = []

    def submit(self, query, profile) -> Future:
        self.submit_times.append(time.perf_counter())
        future: Future = Future()
        timer = threading.Timer(self.delay_s, future.set_result, args=(None,))
        timer.daemon = True
        timer.start()
        return future


class _FailingTarget:
    """Refuses every third submission; answers the rest instantly."""

    def __init__(self):
        self.calls = 0

    def submit(self, query, profile) -> Future:
        self.calls += 1
        if self.calls % 3 == 0:
            raise RuntimeError("queue full")
        future: Future = Future()
        future.set_result(None)
        return future


def _tiny_queries(n=4, dim=8):
    rng = np.random.default_rng(0)
    return rng.standard_normal((n, dim))


class TestOpenLoopRunner:
    def test_arrivals_independent_of_completions(self):
        # 20 arrivals 10 ms apart against a backend that takes 150 ms
        # per request: an open-loop dispatcher finishes submitting all
        # of them before the *first* completes.  A closed loop would
        # need >= 19 * 150 ms just to start the last request.
        schedule = uniform_schedule(100.0, 20)
        target = _SlowTarget(delay_s=0.15)
        mix = RequestMix((RequestProfile(name="only"),))
        outcomes = run_open_loop(
            target, schedule, mix, _tiny_queries(), timeout_s=30.0
        )
        assert len(target.submit_times) == 20
        submit_span = target.submit_times[-1] - target.submit_times[0]
        assert submit_span < 0.15 * 19 / 2, (
            "dispatcher waited on completions (coordinated omission)"
        )
        assert all(o.ok for o in outcomes)
        # Latency is from *scheduled* arrival and includes the service
        # delay for every request.
        for o in outcomes:
            assert o.latency_ms >= 0.15 * 1e3 * 0.5

    def test_latency_measured_from_scheduled_arrival(self):
        # Two requests scheduled at the same instant: the dispatcher
        # necessarily submits the second late, but its latency clock
        # started at the scheduled arrival, so the slip is charged to
        # the measurement rather than dropped.
        schedule = trace_schedule(np.zeros(8))
        target = _SlowTarget(delay_s=0.05)
        mix = RequestMix((RequestProfile(name="only"),))
        outcomes = run_open_loop(
            target, schedule, mix, _tiny_queries(), timeout_s=30.0
        )
        stats = summarize_run(schedule, outcomes)
        assert stats.completed == 8
        assert all(o.latency_ms >= o.submit_lag_ms for o in outcomes)

    def test_accounting_submitted_completed_failed(self):
        schedule = uniform_schedule(200.0, 30)
        target = _FailingTarget()
        mix = RequestMix((RequestProfile(name="only"),))
        outcomes = run_open_loop(
            target, schedule, mix, _tiny_queries(), timeout_s=30.0
        )
        stats = summarize_run(schedule, outcomes)
        assert stats.scheduled == 30
        # Every third submit is refused before reaching the target.
        assert stats.submitted == 20
        assert stats.completed == 20
        assert stats.failed == 10
        assert stats.dropped == 0
        assert not stats.accounting_exact  # refused submits broke it
        assert stats.submitted + 10 == stats.completed + stats.failed

    def test_accounting_exact_on_clean_run(self):
        schedule = uniform_schedule(500.0, 16)
        target = _SlowTarget(delay_s=0.01)
        mix = RequestMix((RequestProfile(name="only"),))
        outcomes = run_open_loop(
            target, schedule, mix, _tiny_queries(), timeout_s=30.0
        )
        stats = summarize_run(schedule, outcomes)
        assert stats.accounting_exact
        assert (
            stats.scheduled
            == stats.submitted
            == stats.completed
            == 16
        )
        assert stats.failed == 0 and stats.dropped == 0

    def test_deterministic_workload_assignment(self):
        schedule = uniform_schedule(500.0, 12)
        mix = RequestMix(
            (
                RequestProfile(name="a", weight=0.5),
                RequestProfile(name="b", k=5, beam_width=16, weight=0.5),
            )
        )
        target = _SlowTarget(delay_s=0.0)
        runs = [
            run_open_loop(
                target, schedule, mix, _tiny_queries(), seed=5, timeout_s=30.0
            )
            for _ in range(2)
        ]
        assert [o.profile for o in runs[0]] == [o.profile for o in runs[1]]
        assert [o.query_index for o in runs[0]] == [
            o.query_index for o in runs[1]
        ]


# ----------------------------------------------------------------------
# Knee detection
# ----------------------------------------------------------------------


def _point(offered, achieved, p99):
    return LoadRunStats(
        offered_qps=offered,
        achieved_qps=achieved,
        scheduled=10,
        submitted=10,
        completed=10,
        failed=0,
        dropped=0,
        latency=LatencySummary(
            count=10,
            mean_ms=p99 / 2,
            p50_ms=p99 / 2,
            p90_ms=p99 * 0.9,
            p99_ms=p99,
            p999_ms=p99,
            max_ms=p99,
        ),
        max_submit_lag_ms=0.0,
        mean_queue_wait_ms=0.0,
        mean_service_ms=0.0,
    )


class TestKnee:
    def test_knee_is_highest_sustained_rate(self):
        points = [
            _point(10, 10, 2.0),
            _point(20, 19.5, 3.0),
            _point(40, 24.0, 80.0),  # melted down: achieved << offered
        ]
        knee = find_knee(points, qps_tolerance=0.9)
        assert knee is not None and knee.offered_qps == 20

    def test_p99_slo_constrains_knee(self):
        points = [_point(10, 10, 2.0), _point(20, 19.5, 50.0)]
        knee = find_knee(points, qps_tolerance=0.9, p99_slo_ms=10.0)
        assert knee is not None and knee.offered_qps == 10

    def test_no_sustained_point_returns_none(self):
        assert find_knee([_point(10, 1.0, 500.0)]) is None


# ----------------------------------------------------------------------
# End-to-end over the real serving stack (tiny index)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def tiny_index():
    data = load("sift", n_base=200, n_queries=8, seed=9)
    quantizer = ProductQuantizer(8, 16, seed=0).fit(data.train)
    graph = build_vamana(data.base, r=8, search_l=20, seed=0)
    return data, MemoryIndex(graph, quantizer, data.base)


class TestBatcherFarm:
    def test_load_answers_bitwise_identical_and_accounted(self, tiny_index):
        data, index = tiny_index
        mix = RequestMix(
            (
                RequestProfile(name="std", k=10, beam_width=24, weight=0.7),
                RequestProfile(name="light", k=5, beam_width=16, weight=0.3),
            )
        )
        reference = {
            p.name: index.search_batch(
                data.queries, k=p.k, beam_width=p.beam_width
            )
            for p in mix.profiles
        }
        schedule = poisson_schedule(400.0, 48, seed=2)
        with BatcherFarm(
            index, mix.profiles, max_batch_size=8, max_wait_ms=2.0
        ) as farm:
            outcomes = run_open_loop(
                farm, schedule, mix, data.queries, seed=2, timeout_s=60.0
            )
        stats = summarize_run(schedule, outcomes)
        assert stats.accounting_exact
        assert stats.completed == 48 and stats.failed == 0
        assert verify_outcomes(outcomes, reference) == 48

    def test_queue_wait_separable_from_service(self, tiny_index):
        data, index = tiny_index
        mix = RequestMix((RequestProfile(name="std", k=5, beam_width=16),))
        schedule = trace_schedule(np.zeros(16))  # all at once: must queue
        with BatcherFarm(
            index, mix.profiles, max_batch_size=4, max_wait_ms=1.0
        ) as farm:
            outcomes = run_open_loop(
                farm, schedule, mix, data.queries, timeout_s=60.0
            )
        stats = summarize_run(schedule, outcomes)
        # The batcher's per-request timeline made it through the farm.
        assert np.isfinite(stats.mean_queue_wait_ms)
        assert np.isfinite(stats.mean_service_ms)
        assert stats.mean_queue_wait_ms >= 0.0
        assert stats.mean_service_ms > 0.0
        for o in outcomes:
            assert hasattr(o.row, "batcher_enqueue_s")
            assert (
                o.row.batcher_enqueue_s
                <= o.row.batcher_dequeue_s
                <= o.row.batcher_complete_s
            )

    def test_verify_outcomes_detects_divergence(self, tiny_index):
        data, index = tiny_index
        mix = RequestMix((RequestProfile(name="std", k=5, beam_width=16),))
        schedule = uniform_schedule(500.0, 8)
        reference = {
            "std": index.search_batch(data.queries, k=5, beam_width=16)
        }
        with BatcherFarm(index, mix.profiles, max_batch_size=4) as farm:
            outcomes = run_open_loop(
                farm, schedule, mix, data.queries, timeout_s=60.0
            )
        assert verify_outcomes(outcomes, reference) == 8
        # Corrupt one answer: the check must notice.
        victim = next(o for o in outcomes if o.ok)
        victim.row.ids = victim.row.ids.copy()
        victim.row.ids[0] = -7
        with pytest.raises(AssertionError, match="diverged"):
            verify_outcomes(outcomes, reference)
