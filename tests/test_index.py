"""Tests for the in-memory and hybrid indexes and the L2R baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import compute_ground_truth, load
from repro.graphs import build_vamana
from repro.index import (
    DiskIndex,
    L2RIndex,
    LearnedRoutingReweighter,
    MemoryIndex,
    SimulatedSSD,
    SSDConfig,
)
from repro.metrics import recall_at_k
from repro.quantization import ProductQuantizer

RNG = np.random.default_rng(71)


@pytest.fixture(scope="module")
def setup():
    data = load("sift", n_base=600, n_queries=15, seed=0)
    graph = build_vamana(data.base, r=12, search_l=30, seed=0)
    quantizer = ProductQuantizer(8, 32, seed=0).fit(data.train)
    gt = compute_ground_truth(data.base, data.queries, k=10)
    return data, graph, quantizer, gt


class TestSimulatedSSD:
    def test_read_accounting(self):
        x = RNG.normal(size=(20, 4)).astype(np.float32)
        adj = [np.array([(i + 1) % 20]) for i in range(20)]
        ssd = SimulatedSSD(x, adj, SSDConfig(read_latency_us=50.0))
        vec, neighbors = ssd.read_vertex(3)
        np.testing.assert_allclose(vec, x[3])
        np.testing.assert_array_equal(neighbors, [4])
        assert ssd.page_reads == 1
        assert ssd.simulated_io_us == 50.0

    def test_batch_parallelism(self):
        x = RNG.normal(size=(20, 4)).astype(np.float32)
        adj = [np.array([0]) for _ in range(20)]
        cfg = SSDConfig(read_latency_us=100.0, queue_parallelism=4)
        ssd = SimulatedSSD(x, adj, cfg)
        ssd.read_batch(np.arange(8))
        # 8 reads at parallelism 4 -> 2 waves.
        assert ssd.simulated_io_us == 200.0
        assert ssd.page_reads == 8

    def test_empty_batch(self):
        x = RNG.normal(size=(5, 3)).astype(np.float32)
        ssd = SimulatedSSD(x, [np.array([0])] * 5)
        vecs, adjs = ssd.read_batch(np.array([], dtype=np.int64))
        assert vecs.shape == (0, 3)
        assert ssd.page_reads == 0

    def test_reset(self):
        x = RNG.normal(size=(5, 3)).astype(np.float32)
        ssd = SimulatedSSD(x, [np.array([0])] * 5)
        ssd.read_vertex(0)
        ssd.reset_counters()
        assert ssd.page_reads == 0
        assert ssd.simulated_io_us == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulatedSSD(np.zeros(5), [np.array([0])])
        with pytest.raises(ValueError):
            SimulatedSSD(np.zeros((5, 2)), [np.array([0])] * 3)

    def test_stored_bytes_page_rounded(self):
        x = RNG.normal(size=(5, 3)).astype(np.float32)
        ssd = SimulatedSSD(x, [np.array([0])] * 5, SSDConfig(page_bytes=4096))
        assert ssd.stored_bytes() % 4096 == 0


class TestMemoryIndex:
    def test_search_returns_k(self, setup):
        data, graph, quantizer, gt = setup
        index = MemoryIndex(graph, quantizer, data.base)
        res = index.search(data.queries[0], k=10, beam_width=32)
        assert res.ids.shape == (10,)
        assert res.hops > 0

    def test_recall_improves_with_beam(self, setup):
        data, graph, quantizer, gt = setup
        index = MemoryIndex(graph, quantizer, data.base)

        def run(beam):
            ids = [index.search(q, k=10, beam_width=beam).ids for q in data.queries]
            return recall_at_k(ids, gt.ids)

        assert run(64) >= run(10) - 0.05

    def test_validation(self, setup):
        data, graph, quantizer, gt = setup
        with pytest.raises(ValueError):
            MemoryIndex(graph, quantizer, data.base[:-5])
        with pytest.raises(ValueError):
            MemoryIndex(graph, ProductQuantizer(4, 8), data.base)
        index = MemoryIndex(graph, quantizer, data.base)
        with pytest.raises(ValueError):
            index.search(data.queries[0], k=0)
        with pytest.raises(ValueError):
            index.search(data.queries[0], k=20, beam_width=10)

    def test_memory_accounting(self, setup):
        data, graph, quantizer, gt = setup
        index = MemoryIndex(graph, quantizer, data.base)
        assert index.memory_bytes() < index.full_precision_bytes()
        assert index.compression_ratio() > 1.0


class TestDiskIndex:
    def test_search_returns_exact_reranked(self, setup):
        data, graph, quantizer, gt = setup
        index = DiskIndex(graph, quantizer, data.base)
        res = index.search(data.queries[0], k=10, beam_width=32)
        assert res.ids.shape == (10,)
        # Distances are exact: recompute and compare.
        expected = ((data.base[res.ids] - data.queries[0]) ** 2).sum(axis=1)
        np.testing.assert_allclose(res.distances, expected, rtol=1e-5)
        assert (np.diff(res.distances) >= -1e-9).all()

    def test_io_counters_track_hops(self, setup):
        data, graph, quantizer, gt = setup
        index = DiskIndex(graph, quantizer, data.base)
        res = index.search(data.queries[1], k=10, beam_width=32)
        assert res.page_reads == res.hops
        assert res.io_rounds <= res.hops
        assert res.simulated_io_us > 0

    def test_hybrid_recall_beats_memory_at_same_beam(self, setup):
        # Rerank with exact distances must dominate code-only ranking.
        data, graph, quantizer, gt = setup
        mem = MemoryIndex(graph, quantizer, data.base)
        disk = DiskIndex(graph, quantizer, data.base)
        beam = 32
        mem_ids = [mem.search(q, k=10, beam_width=beam).ids for q in data.queries]
        disk_ids = [disk.search(q, k=10, beam_width=beam).ids for q in data.queries]
        assert recall_at_k(disk_ids, gt.ids) >= recall_at_k(mem_ids, gt.ids)

    def test_hybrid_reaches_high_recall(self, setup):
        data, graph, quantizer, gt = setup
        disk = DiskIndex(graph, quantizer, data.base)
        ids = [disk.search(q, k=10, beam_width=64).ids for q in data.queries]
        assert recall_at_k(ids, gt.ids) > 0.9

    def test_memory_fraction_is_small(self, setup):
        data, graph, quantizer, gt = setup
        disk = DiskIndex(graph, quantizer, data.base)
        # Codes + codebook should be a small fraction of the SSD payload
        # (the paper's f = 1/32 regime directionally).
        assert disk.memory_fraction() < 0.6

    def test_validation(self, setup):
        data, graph, quantizer, gt = setup
        with pytest.raises(ValueError):
            DiskIndex(graph, quantizer, data.base, io_width=0)
        index = DiskIndex(graph, quantizer, data.base)
        with pytest.raises(ValueError):
            index.search(data.queries[0], k=0)


class TestL2R:
    def test_reweighter_improves_distance_fit(self, setup):
        data, graph, quantizer, gt = setup
        rew = LearnedRoutingReweighter.fit(
            quantizer, data.base, rng=np.random.default_rng(0)
        )
        assert rew.weights.shape == (8,)
        assert (rew.weights >= 0).all()

    def test_reweighter_validation(self):
        with pytest.raises(ValueError):
            LearnedRoutingReweighter(np.array([-1.0, 2.0]))

    def test_l2r_index_searches(self, setup):
        data, graph, quantizer, gt = setup
        index = L2RIndex(
            graph, quantizer, data.base, rng=np.random.default_rng(0)
        )
        res = index.search(data.queries[0], k=10, beam_width=32)
        assert res.ids.shape == (10,)
        ids = [index.search(q, k=10, beam_width=48).ids for q in data.queries]
        assert recall_at_k(ids, gt.ids) > 0.3

    def test_l2r_search_validation(self, setup):
        data, graph, quantizer, gt = setup
        index = L2RIndex(graph, quantizer, data.base, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            index.search(data.queries[0], k=0)
        with pytest.raises(ValueError):
            index.search(data.queries[0], k=20, beam_width=10)
