"""Unit and property tests for the autodiff tensor engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.autodiff import Tensor, concatenate, stack

from .helpers import gradcheck

RNG = np.random.default_rng(0)


def finite_floats(shape):
    return arrays(
        np.float64,
        shape,
        elements=st.floats(-3.0, 3.0, allow_nan=False, allow_infinity=False),
    )


class TestBasics:
    def test_construction_defaults(self):
        t = Tensor([1.0, 2.0])
        assert t.shape == (2,)
        assert not t.requires_grad
        assert t.grad is None

    def test_numpy_returns_copy(self):
        t = Tensor([1.0, 2.0])
        out = t.numpy()
        out[0] = 99.0
        assert t.data[0] == 1.0

    def test_detach_breaks_tape(self):
        a = Tensor([1.0], requires_grad=True)
        b = (a * 2.0).detach()
        c = (b * 3.0).sum()
        c.backward()
        assert a.grad is None

    def test_backward_requires_scalar(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (a * 2.0).backward()

    def test_item(self):
        assert Tensor(3.5).item() == 3.5

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2.0).sum().backward()
        assert a.grad is not None
        a.zero_grad()
        assert a.grad is None


class TestArithmeticGradients:
    def test_add(self):
        gradcheck(lambda ts: (ts[0] + ts[1]).sum(), [RNG.normal(size=(3, 4)), RNG.normal(size=(3, 4))])

    def test_add_broadcast(self):
        gradcheck(lambda ts: (ts[0] + ts[1]).sum(), [RNG.normal(size=(3, 4)), RNG.normal(size=(4,))])

    def test_sub(self):
        gradcheck(lambda ts: (ts[0] - ts[1]).sum(), [RNG.normal(size=(2, 3)), RNG.normal(size=(2, 3))])

    def test_rsub_scalar(self):
        gradcheck(lambda ts: (1.0 - ts[0]).sum(), [RNG.normal(size=(5,))])

    def test_mul(self):
        gradcheck(lambda ts: (ts[0] * ts[1]).sum(), [RNG.normal(size=(3,)), RNG.normal(size=(3,))])

    def test_mul_broadcast_scalar(self):
        gradcheck(lambda ts: (ts[0] * 2.5).sum(), [RNG.normal(size=(3, 2))])

    def test_div(self):
        denom = RNG.normal(size=(4,)) + 5.0
        gradcheck(lambda ts: (ts[0] / ts[1]).sum(), [RNG.normal(size=(4,)), denom])

    def test_rdiv(self):
        denom = RNG.normal(size=(4,)) + 5.0
        gradcheck(lambda ts: (2.0 / ts[0]).sum(), [denom])

    def test_neg(self):
        gradcheck(lambda ts: (-ts[0]).sum(), [RNG.normal(size=(3,))])

    def test_pow(self):
        base = np.abs(RNG.normal(size=(4,))) + 0.5
        gradcheck(lambda ts: (ts[0] ** 3.0).sum(), [base])

    def test_pow_requires_scalar_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** np.array([2.0])

    def test_matmul_2d(self):
        gradcheck(lambda ts: (ts[0] @ ts[1]).sum(), [RNG.normal(size=(3, 4)), RNG.normal(size=(4, 2))])

    def test_matmul_vec_mat(self):
        gradcheck(lambda ts: (ts[0] @ ts[1]).sum(), [RNG.normal(size=(4,)), RNG.normal(size=(4, 2))])

    def test_matmul_mat_vec(self):
        gradcheck(lambda ts: (ts[0] @ ts[1]).sum(), [RNG.normal(size=(3, 4)), RNG.normal(size=(4,))])

    def test_matmul_vec_vec(self):
        gradcheck(lambda ts: ts[0] @ ts[1], [RNG.normal(size=(4,)), RNG.normal(size=(4,))])

    def test_gradient_accumulation_reuse(self):
        # The same tensor used twice must receive the sum of both paths.
        a = Tensor([2.0], requires_grad=True)
        loss = (a * a).sum()
        loss.backward()
        np.testing.assert_allclose(a.grad, [4.0])


class TestShapeOps:
    def test_reshape(self):
        gradcheck(lambda ts: (ts[0].reshape(6) * np.arange(6.0)).sum(), [RNG.normal(size=(2, 3))])

    def test_transpose(self):
        gradcheck(lambda ts: (ts[0].T @ ts[0]).sum(), [RNG.normal(size=(3, 2))])

    def test_transpose_axes(self):
        w = RNG.normal(size=(2, 3, 4))
        gradcheck(lambda ts: (ts[0].transpose((2, 0, 1)) * 1.5).sum(), [w])

    def test_getitem_rows(self):
        idx = np.array([0, 2, 2])
        gradcheck(lambda ts: (ts[0][idx] * 2.0).sum(), [RNG.normal(size=(4, 3))])

    def test_stack(self):
        gradcheck(
            lambda ts: (stack([ts[0], ts[1]], axis=0) * 3.0).sum(),
            [RNG.normal(size=(2, 3)), RNG.normal(size=(2, 3))],
        )

    def test_concatenate(self):
        gradcheck(
            lambda ts: (concatenate([ts[0], ts[1]], axis=1) * 2.0).sum(),
            [RNG.normal(size=(2, 3)), RNG.normal(size=(2, 2))],
        )


class TestReductionsAndElementwise:
    def test_sum_axis(self):
        gradcheck(lambda ts: (ts[0].sum(axis=0) * np.arange(3.0)).sum(), [RNG.normal(size=(4, 3))])

    def test_sum_keepdims(self):
        gradcheck(lambda ts: (ts[0].sum(axis=1, keepdims=True) * 2.0).sum(), [RNG.normal(size=(4, 3))])

    def test_mean(self):
        gradcheck(lambda ts: ts[0].mean(), [RNG.normal(size=(4, 3))])

    def test_mean_axis(self):
        gradcheck(lambda ts: (ts[0].mean(axis=1) ** 2.0).sum(), [RNG.normal(size=(4, 3))])

    def test_exp(self):
        gradcheck(lambda ts: ts[0].exp().sum(), [RNG.normal(size=(3,))])

    def test_log(self):
        gradcheck(lambda ts: ts[0].log().sum(), [np.abs(RNG.normal(size=(3,))) + 0.5])

    def test_sqrt(self):
        gradcheck(lambda ts: ts[0].sqrt().sum(), [np.abs(RNG.normal(size=(3,))) + 0.5])

    def test_relu(self):
        x = RNG.normal(size=(10,))
        x[np.abs(x) < 1e-3] = 0.5  # avoid the kink
        gradcheck(lambda ts: ts[0].relu().sum(), [x])

    def test_tanh(self):
        gradcheck(lambda ts: ts[0].tanh().sum(), [RNG.normal(size=(5,))])

    def test_maximum(self):
        a = RNG.normal(size=(6,))
        b = RNG.normal(size=(6,))
        mask = np.abs(a - b) < 1e-3
        a[mask] += 0.5  # keep away from ties
        gradcheck(lambda ts: ts[0].maximum(ts[1]).sum(), [a, b])

    def test_max_axis(self):
        x = RNG.normal(size=(4, 5))
        gradcheck(lambda ts: ts[0].max(axis=1).sum(), [x])

    def test_max_global(self):
        x = np.array([1.0, 7.0, 3.0])
        t = Tensor(x, requires_grad=True)
        out = t.max()
        out.backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])


@settings(max_examples=25, deadline=None)
@given(finite_floats(array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=4)))
def test_property_add_mul_grads(x):
    """d/dx sum(x*x + 3x) = 2x + 3 for arbitrary shapes."""
    t = Tensor(x, requires_grad=True)
    loss = (t * t + t * 3.0).sum()
    loss.backward()
    np.testing.assert_allclose(t.grad, 2.0 * x + 3.0, atol=1e-8)


@settings(max_examples=25, deadline=None)
@given(finite_floats((3, 3)))
def test_property_linear_chain(x):
    """Gradient of sum(exp(x) * 0) is 0 and of sum(x) is 1."""
    t = Tensor(x, requires_grad=True)
    (t.sum() * 1.0).backward()
    np.testing.assert_allclose(t.grad, np.ones_like(x))
