"""Tests for codebooks, ADC tables, and the four classical quantizers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantization import (
    CatalystQuantizer,
    Codebook,
    LinkAndCodeQuantizer,
    LookupTable,
    OptimizedProductQuantizer,
    ProductQuantizer,
    adc_distances,
    code_dtype_for,
    sdc_distances,
)

RNG = np.random.default_rng(11)


def clustered_data(n=400, d=16, clusters=8, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=4.0, size=(clusters, d))
    labels = rng.integers(clusters, size=n)
    return centers[labels] + 0.3 * rng.normal(size=(n, d))


class TestCodeDtype:
    def test_boundaries(self):
        assert code_dtype_for(2) == np.uint8
        assert code_dtype_for(256) == np.uint8
        assert code_dtype_for(257) == np.uint16
        assert code_dtype_for(65536) == np.uint16
        assert code_dtype_for(65537) == np.uint32

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            code_dtype_for(0)


class TestCodebook:
    def make(self, m=4, k=8, d_sub=4, seed=0):
        rng = np.random.default_rng(seed)
        return Codebook(rng.normal(size=(m, k, d_sub)))

    def test_shapes_and_props(self):
        book = self.make()
        assert book.num_chunks == 4
        assert book.num_codewords == 8
        assert book.sub_dim == 4
        assert book.dim == 16
        assert book.bits_per_vector() == 4 * 3

    def test_encode_decode_roundtrip_on_codewords(self):
        # Encoding an exact codeword concatenation must reproduce it.
        book = self.make()
        vec = np.concatenate([book.codewords[j, j % 8] for j in range(4)])
        codes = book.encode(vec[None, :])
        np.testing.assert_array_equal(codes[0], [0 % 8, 1 % 8, 2 % 8, 3 % 8])
        np.testing.assert_allclose(book.decode(codes)[0], vec)

    def test_encode_is_nearest_codeword(self):
        book = self.make()
        x = RNG.normal(size=(20, 16))
        codes = book.encode(x)
        for j in range(4):
            chunk = x[:, j * 4 : (j + 1) * 4]
            d = ((chunk[:, None, :] - book.codewords[j][None, :, :]) ** 2).sum(-1)
            np.testing.assert_array_equal(codes[:, j], d.argmin(axis=1))

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            Codebook(np.zeros((3, 4)))
        book = self.make()
        with pytest.raises(ValueError):
            book.encode(np.zeros((2, 10)))
        with pytest.raises(ValueError):
            book.decode(np.zeros((2, 3), dtype=np.uint8))

    def test_reconstruction_error_zero_for_codewords(self):
        book = self.make()
        vecs = np.stack(
            [np.concatenate(book.codewords[:, i]) for i in range(3)]
        )
        assert book.reconstruction_error(vecs) < 1e-18


class TestLookupTable:
    def test_adc_matches_explicit_distance(self):
        book = Codebook(RNG.normal(size=(4, 8, 4)))
        x = RNG.normal(size=(30, 16))
        q = RNG.normal(size=16)
        codes = book.encode(x)
        recon = book.decode(codes)
        expected = ((recon - q) ** 2).sum(axis=1)
        got = adc_distances(book, q, codes)
        np.testing.assert_allclose(got, expected, atol=1e-9)

    def test_single_code_vector(self):
        book = Codebook(RNG.normal(size=(2, 4, 3)))
        q = RNG.normal(size=6)
        table = LookupTable.build(book, q)
        codes = book.encode(RNG.normal(size=(1, 6)))
        single = table.distance(codes[0])
        batch = table.distance(codes)
        assert np.isscalar(single) or single.ndim == 0
        np.testing.assert_allclose(single, batch[0])

    def test_dim_validation(self):
        book = Codebook(RNG.normal(size=(2, 4, 3)))
        with pytest.raises(ValueError):
            LookupTable.build(book, np.zeros(5))
        table = LookupTable.build(book, np.zeros(6))
        with pytest.raises(ValueError):
            table.distance(np.zeros((2, 3), dtype=np.uint8))

    def test_sdc_is_noisier_but_correlated(self):
        x = clustered_data(n=300, d=8, clusters=6)
        book = ProductQuantizer(2, 16, seed=0).fit(x).codebook
        q = x[0] + 0.05
        codes = book.encode(x)
        true_d = ((x - q) ** 2).sum(axis=1)
        adc = adc_distances(book, q, codes)
        sdc = sdc_distances(book, q, codes)
        corr_adc = np.corrcoef(true_d, adc)[0, 1]
        corr_sdc = np.corrcoef(true_d, sdc)[0, 1]
        assert corr_adc > 0.9
        assert corr_sdc > 0.5


class TestProductQuantizer:
    def test_fit_encode_shapes(self):
        x = clustered_data()
        pq = ProductQuantizer(4, 16, seed=0).fit(x)
        codes = pq.encode(x)
        assert codes.shape == (400, 4)
        assert codes.dtype == np.uint8
        assert pq.decode(codes).shape == (400, 16)

    def test_unfitted_raises(self):
        pq = ProductQuantizer(4, 16)
        with pytest.raises(RuntimeError):
            pq.encode(np.zeros((2, 16)))

    def test_dim_divisibility(self):
        with pytest.raises(ValueError):
            ProductQuantizer(5, 8).fit(np.zeros((10, 16)))

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ProductQuantizer(0, 8)
        with pytest.raises(ValueError):
            ProductQuantizer(2, 1)

    def test_more_codewords_reduce_error(self):
        x = clustered_data(n=600)
        errs = [
            ProductQuantizer(4, k, seed=0).fit(x).quantization_error(x)
            for k in (4, 16, 64)
        ]
        assert errs[0] > errs[1] > errs[2]

    def test_code_bytes(self):
        x = clustered_data()
        pq = ProductQuantizer(8, 256, seed=0).fit(np.repeat(x, 1, axis=0))
        assert pq.code_bytes_per_vector() == 8

    def test_lookup_table_consistency(self):
        x = clustered_data()
        pq = ProductQuantizer(4, 16, seed=0).fit(x)
        q = x[5]
        codes = pq.encode(x[:50])
        table_d = pq.lookup_table(q).distance(codes)
        recon = pq.decode(codes)
        np.testing.assert_allclose(
            table_d, ((recon - q) ** 2).sum(axis=1), atol=1e-9
        )


class TestOPQ:
    def test_rotation_is_orthonormal(self):
        x = clustered_data()
        opq = OptimizedProductQuantizer(4, 16, opq_iter=3, seed=0).fit(x)
        r = opq.rotation
        np.testing.assert_allclose(r @ r.T, np.eye(16), atol=1e-9)

    def test_opq_not_worse_than_pq_on_correlated_data(self):
        # Strongly correlated dimensions: OPQ's rotation should help.
        rng = np.random.default_rng(3)
        latent = rng.normal(size=(500, 4))
        mixing = rng.normal(size=(4, 16))
        x = latent @ mixing + 0.05 * rng.normal(size=(500, 16))
        pq_err = ProductQuantizer(4, 16, seed=0).fit(x).quantization_error(x)
        opq = OptimizedProductQuantizer(4, 16, opq_iter=8, seed=0).fit(x)
        # OPQ error is measured in rotated space; rotation preserves norms
        # so errors are comparable.
        assert opq.quantization_error(x) <= pq_err * 1.05

    def test_transform_preserves_norms(self):
        x = clustered_data()
        opq = OptimizedProductQuantizer(4, 8, opq_iter=2, seed=0).fit(x)
        np.testing.assert_allclose(
            np.linalg.norm(opq.transform(x), axis=1),
            np.linalg.norm(x, axis=1),
            rtol=1e-9,
        )

    def test_unfitted_transform_raises(self):
        with pytest.raises(RuntimeError):
            OptimizedProductQuantizer(4, 8).transform(np.zeros((1, 16)))

    def test_parameter_bytes_include_rotation(self):
        x = clustered_data()
        opq = OptimizedProductQuantizer(4, 8, opq_iter=2, seed=0).fit(x)
        pq = ProductQuantizer(4, 8, seed=0).fit(x)
        assert opq.parameter_bytes() > pq.parameter_bytes()


class TestCatalyst:
    def test_fit_and_shapes(self):
        x = clustered_data(n=300, d=16)
        cat = CatalystQuantizer(
            4, 16, out_dim=8, hidden_dim=16, epochs=2, batch_size=64, seed=0
        ).fit(x)
        codes = cat.encode(x[:10])
        assert codes.shape == (10, 4)
        assert cat.decode(codes).shape == (10, 8)

    def test_transform_is_on_sphere(self):
        x = clustered_data(n=200, d=16)
        cat = CatalystQuantizer(
            2, 8, out_dim=8, hidden_dim=16, epochs=1, batch_size=64, seed=0
        ).fit(x)
        norms = np.linalg.norm(cat.transform(x), axis=1)
        np.testing.assert_allclose(norms, np.ones_like(norms), atol=1e-6)

    def test_training_reduces_loss(self):
        x = clustered_data(n=400, d=16)
        cat = CatalystQuantizer(
            2, 8, out_dim=8, hidden_dim=32, epochs=6, batch_size=128, seed=0
        ).fit(x)
        assert cat.training_loss[-1] < cat.training_loss[0]

    def test_out_dim_divisibility(self):
        with pytest.raises(ValueError):
            CatalystQuantizer(3, 8, out_dim=8)

    def test_parameter_bytes_exceed_plain_pq(self):
        x = clustered_data(n=200, d=16)
        cat = CatalystQuantizer(
            2, 8, out_dim=8, hidden_dim=16, epochs=1, batch_size=64, seed=0
        ).fit(x)
        assert cat.parameter_bytes() > cat.codebook.parameter_bytes()


class TestLinkAndCode:
    def test_codes_include_refinement_bytes(self):
        x = clustered_data()
        lnc = LinkAndCodeQuantizer(4, 16, n_sq=2, seed=0).fit(x)
        codes = lnc.encode(x[:7])
        assert codes.shape == (7, 6)
        assert lnc.code_bytes_per_vector() == 6

    def test_refinement_reduces_error(self):
        x = clustered_data(n=600)
        plain = LinkAndCodeQuantizer(4, 16, n_sq=0, seed=0).fit(x)
        refined = LinkAndCodeQuantizer(4, 16, n_sq=2, seed=0).fit(x)

        def err(q):
            recon = q.decode(q.encode(x))
            return ((x - recon) ** 2).sum(axis=1).mean()

        assert err(refined) < err(plain)

    def test_decode_validation(self):
        x = clustered_data()
        lnc = LinkAndCodeQuantizer(4, 16, n_sq=1, seed=0).fit(x)
        with pytest.raises(ValueError):
            lnc.decode(np.zeros((2, 4), dtype=np.uint8))

    def test_lookup_table_correlates_with_true_distance(self):
        x = clustered_data(n=500)
        lnc = LinkAndCodeQuantizer(4, 16, n_sq=1, seed=0).fit(x)
        q = x[3] + 0.1
        codes = lnc.encode(x)
        est = lnc.lookup_table(q).distance(codes)
        true_d = ((x - q) ** 2).sum(axis=1)
        assert np.corrcoef(est, true_d)[0, 1] > 0.8

    def test_n_sq_validation(self):
        with pytest.raises(ValueError):
            LinkAndCodeQuantizer(4, 16, n_sq=-1)


@settings(max_examples=10, deadline=None)
@given(st.integers(2, 4), st.integers(4, 16))
def test_property_pq_decode_vectors_are_codeword_concats(m, k):
    x = clustered_data(n=120, d=8 * m, clusters=5, seed=k)
    pq = ProductQuantizer(m, k, seed=0, max_iter=5).fit(x)
    recon = pq.decode(pq.encode(x[:20]))
    book = pq.codebook
    for row in recon:
        for j in range(m):
            sub = row[j * book.sub_dim : (j + 1) * book.sub_dim]
            d = ((book.codewords[j] - sub) ** 2).sum(axis=1).min()
            assert d < 1e-18
