"""Storage v2: entropy coder, container, and the format-2 round-trip.

Three layers of pinning:

* Unit: the rANS coder round-trips exactly (and refuses corrupt
  streams), the container round-trips arrays through mmap and copy
  modes and rejects future versions.
* Format: every scenario round-trips bitwise through the v2
  compressed + mmap layout (plus 4-shard sharded and a replicated
  process fleet); v1 directories load bitwise-identically under the
  same loader; unknown future versions are rejected with a clear
  error; the empty streaming index survives both layouts.
* Copy-on-write: mutating one mmap-loaded replica never writes
  through the shared read-only map — siblings and the on-disk file
  stay untouched.
"""

from __future__ import annotations

import hashlib
import os

import numpy as np
import pytest

from repro.api import (
    DatasetSpec,
    GraphSpec,
    IndexSpec,
    QuantizerSpec,
    ScenarioSpec,
    SearchRequest,
    ShardingSpec,
    build,
    describe_index,
    load_index,
    save_index,
    storage_report,
)
from repro.datasets import load
from repro.storage import (
    CompressedCodes,
    Container,
    EntropyCoder,
    write_container,
)


def base_spec(**scenario) -> IndexSpec:
    return IndexSpec(
        dataset=DatasetSpec(name="sift", n_base=220, n_queries=6, seed=4),
        graph=GraphSpec(kind="vamana", params={"r": 8, "search_l": 16}),
        quantizer=QuantizerSpec(kind="pq", num_chunks=8, num_codewords=16),
        scenario=ScenarioSpec(**scenario) if scenario else ScenarioSpec(),
    )


@pytest.fixture(scope="module")
def queries():
    return load("sift", n_base=220, n_queries=6, seed=4).queries


def assert_responses_identical(a, b):
    np.testing.assert_array_equal(a.ids, b.ids)
    np.testing.assert_array_equal(a.distances, b.distances)
    np.testing.assert_array_equal(a.counts, b.counts)
    assert set(a.counters) == set(b.counters)
    for name in a.counters:
        np.testing.assert_array_equal(a.counters[name], b.counters[name])


def _file_sha(path: str) -> str:
    with open(path, "rb") as fh:
        return hashlib.sha256(fh.read()).hexdigest()


# ----------------------------------------------------------------------
# Entropy coder
# ----------------------------------------------------------------------


class TestEntropyCoder:
    def test_round_trip_skewed(self):
        rng = np.random.default_rng(0)
        p = np.random.default_rng(1).dirichlet(np.ones(32) * 0.4)
        codes = rng.choice(32, size=(700, 8), p=p).astype(np.uint8)
        coder = EntropyCoder()
        comp = coder.compress(codes)
        np.testing.assert_array_equal(coder.decompress(comp), codes)
        assert comp.blob.nbytes < codes.nbytes

    def test_round_trip_uniform_small_alphabet(self):
        # Uniform over 16 symbols still beats 8 stored bits per code.
        rng = np.random.default_rng(2)
        codes = rng.integers(16, size=(500, 4)).astype(np.uint8)
        coder = EntropyCoder()
        comp = coder.compress(codes)
        np.testing.assert_array_equal(coder.decompress(comp), codes)
        assert comp.blob.nbytes < codes.nbytes

    def test_degenerate_single_symbol_column(self):
        codes = np.zeros((300, 3), dtype=np.uint16)
        codes[:, 1] = 7
        coder = EntropyCoder()
        comp = coder.compress(codes)
        decoded = coder.decompress(comp)
        np.testing.assert_array_equal(decoded, codes)
        assert decoded.dtype == codes.dtype
        # A constant column carries no information: 4 flush bytes each.
        assert comp.blob.nbytes == 12

    def test_preserves_dtype(self):
        for dtype in (np.uint8, np.uint16, np.int64):
            codes = np.arange(40, dtype=dtype).reshape(20, 2) % 5
            comp = EntropyCoder().compress(codes)
            decoded = EntropyCoder().decompress(comp)
            assert decoded.dtype == np.dtype(dtype)
            np.testing.assert_array_equal(decoded, codes)

    def test_corrupt_blob_rejected(self):
        codes = np.random.default_rng(3).integers(
            16, size=(200, 4)
        ).astype(np.uint8)
        comp = EntropyCoder().compress(codes)
        blob = comp.blob.copy()
        blob[len(blob) // 2] ^= 0xFF
        bad = CompressedCodes(
            freqs=comp.freqs,
            blob=blob,
            starts=comp.starts,
            num_rows=comp.num_rows,
            code_dtype=comp.code_dtype,
            scale_bits=comp.scale_bits,
        )
        with pytest.raises(ValueError, match="rANS stream"):
            EntropyCoder().decompress(bad)

    def test_truncated_blob_rejected(self):
        codes = np.random.default_rng(4).integers(
            16, size=(100, 2)
        ).astype(np.uint8)
        comp = EntropyCoder().compress(codes)
        bad = CompressedCodes(
            freqs=comp.freqs,
            blob=comp.blob[:2],
            starts=np.array([0, 2, 2], dtype=np.int64),
            num_rows=comp.num_rows,
            code_dtype=comp.code_dtype,
            scale_bits=comp.scale_bits,
        )
        with pytest.raises(ValueError):
            EntropyCoder().decompress(bad)

    def test_rejects_bad_inputs(self):
        coder = EntropyCoder()
        with pytest.raises(ValueError, match="2-D"):
            coder.compress(np.zeros(5, dtype=np.uint8))
        with pytest.raises(ValueError, match="integer"):
            coder.compress(np.zeros((3, 2)))
        with pytest.raises(ValueError, match="empty"):
            coder.compress(np.zeros((0, 2), dtype=np.uint8))

    def test_arrays_meta_round_trip(self):
        codes = np.random.default_rng(5).integers(
            8, size=(64, 4)
        ).astype(np.uint8)
        comp = EntropyCoder().compress(codes)
        arrays = comp.to_arrays("codes")
        rebuilt = CompressedCodes.from_arrays(
            "codes", comp.meta(), arrays.__getitem__
        )
        np.testing.assert_array_equal(
            EntropyCoder().decompress(rebuilt), codes
        )


# ----------------------------------------------------------------------
# Container
# ----------------------------------------------------------------------


class TestContainer:
    def test_round_trip_mmap_and_copy(self, tmp_path):
        path = str(tmp_path / "index.bin")
        arrays = {
            "codes": np.arange(24, dtype=np.uint8).reshape(6, 4),
            "offsets": np.arange(7, dtype=np.int64),
            "empty": np.empty((0, 3), dtype=np.float64),
            "vectors": np.random.default_rng(0).standard_normal((6, 3)),
        }
        sizes = write_container(path, arrays, meta={"scenario": "memory"})
        assert sizes["empty"] == 0
        for mmap in (True, False):
            cont = Container(path, mmap=mmap)
            assert cont.meta == {"scenario": "memory"}
            for name, arr in arrays.items():
                got = cont.read(name)
                assert got.dtype == arr.dtype
                np.testing.assert_array_equal(got, arr)
                assert isinstance(got, np.memmap) == (mmap and arr.size > 0)

    def test_mmap_views_are_read_only(self, tmp_path):
        path = str(tmp_path / "index.bin")
        write_container(path, {"codes": np.zeros((4, 4), dtype=np.uint8)})
        view = Container(path).read("codes")
        assert not view.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            view[0, 0] = 1

    def test_sections_page_aligned(self, tmp_path):
        path = str(tmp_path / "index.bin")
        write_container(
            path,
            {
                "a": np.zeros(3, dtype=np.uint8),
                "b": np.zeros(5, dtype=np.int64),
            },
        )
        cont = Container(path)
        for section in cont._sections.values():
            if section["nbytes"]:
                assert section["offset"] % cont.align == 0

    def test_future_version_rejected(self, tmp_path):
        path = str(tmp_path / "index.bin")
        write_container(path, {"a": np.zeros(2, dtype=np.uint8)})
        with open(path, "r+b") as fh:
            fh.seek(8)
            fh.write((99).to_bytes(4, "little"))
        with pytest.raises(ValueError, match="version 99"):
            Container(path)

    def test_bad_magic_rejected(self, tmp_path):
        path = str(tmp_path / "junk.bin")
        with open(path, "wb") as fh:
            fh.write(b"not a container at all")
        with pytest.raises(ValueError, match="magic"):
            Container(path)

    def test_missing_section_keyerror(self, tmp_path):
        path = str(tmp_path / "index.bin")
        write_container(path, {"a": np.zeros(2, dtype=np.uint8)})
        with pytest.raises(KeyError, match="nope"):
            Container(path).read("nope")


# ----------------------------------------------------------------------
# Format v2 round-trips (bitwise)
# ----------------------------------------------------------------------

SCENARIOS = [
    pytest.param({}, None, id="memory"),
    pytest.param({"kind": "l2r"}, None, id="l2r"),
    pytest.param(
        {"kind": "hybrid", "params": {"learned_routing": True}},
        None,
        id="hybrid-l2r",
    ),
    pytest.param({"kind": "filtered"}, 1, id="filtered"),
    pytest.param({"kind": "streaming"}, None, id="streaming"),
]


@pytest.mark.slow
@pytest.mark.parametrize("scenario,label", SCENARIOS)
@pytest.mark.parametrize("compress", [False, True], ids=["raw", "rans"])
def test_v2_round_trip_bitwise(tmp_path, queries, scenario, label, compress):
    index = build(base_spec(**scenario))
    labels = (
        None if label is None else np.full(len(queries), label, dtype=np.int64)
    )
    request = SearchRequest(queries=queries, k=5, beam_width=16, labels=labels)
    expected = index.search(request)

    save_index(index, tmp_path, compress=compress, layout="mmap")
    assert describe_index(tmp_path)["format_version"] == 2
    for mmap in (True, False):
        loaded = load_index(tmp_path, mmap=mmap)
        assert_responses_identical(expected, loaded.search(request))


@pytest.mark.slow
@pytest.mark.parametrize("scenario,label", SCENARIOS)
def test_v1_loads_bitwise_identical_to_v2(tmp_path, queries, scenario, label):
    """A v1 directory and a v2 directory of the same index answer
    identically under the one shared loader."""
    index = build(base_spec(**scenario))
    labels = (
        None if label is None else np.full(len(queries), label, dtype=np.int64)
    )
    request = SearchRequest(queries=queries, k=5, beam_width=16, labels=labels)
    expected = index.search(request)

    v1_dir = tmp_path / "v1"
    v2_dir = tmp_path / "v2"
    save_index(index, v1_dir)  # default layout stays format 1
    save_index(index, v2_dir, compress=True, layout="mmap")
    assert describe_index(v1_dir)["format_version"] == 1
    from_v1 = load_index(v1_dir)
    from_v2 = load_index(v2_dir)
    assert_responses_identical(expected, from_v1.search(request))
    assert_responses_identical(expected, from_v2.search(request))


@pytest.mark.slow
def test_sharded_v2_round_trip(tmp_path, queries):
    spec = base_spec()
    spec = IndexSpec(
        dataset=spec.dataset,
        graph=spec.graph,
        quantizer=spec.quantizer,
        scenario=spec.scenario,
        sharding=ShardingSpec(num_shards=4),
    )
    index = build(spec)
    request = SearchRequest(queries=queries, k=5, beam_width=16)
    expected = index.search(request)
    save_index(index, tmp_path, compress=True, layout="mmap")
    assert describe_index(tmp_path)["format_version"] == 2
    loaded = load_index(tmp_path)
    assert loaded.num_shards == 4
    assert_responses_identical(expected, loaded.search(request))


@pytest.mark.slow
def test_replicated_process_fleet_over_v2(tmp_path, queries):
    """A replicated process fleet boots its replicas off the mapped v2
    container and stays bitwise identical to in-process serving."""
    spec = base_spec()
    ref = build(
        IndexSpec(
            dataset=spec.dataset,
            graph=spec.graph,
            quantizer=spec.quantizer,
            scenario=spec.scenario,
            sharding=ShardingSpec(num_shards=2),
        )
    )
    request = SearchRequest(queries=queries, k=5, beam_width=16)
    expected = ref.search(request)

    save_index(ref, tmp_path, compress=True, layout="mmap")
    fleet = load_index(tmp_path)
    fleet.set_backend("process")
    fleet.set_replicas(2)
    try:
        assert_responses_identical(expected, fleet.search(request))
    finally:
        fleet.close()


def test_future_index_version_rejected(tmp_path):
    index = build(base_spec())
    save_index(index, tmp_path, layout="mmap")
    import json

    meta_path = tmp_path / "index.json"
    meta = json.loads(meta_path.read_text())
    meta["format_version"] = 3
    meta_path.write_text(json.dumps(meta))
    with pytest.raises(ValueError, match="format version 3"):
        load_index(tmp_path)


def test_compress_requires_mmap_layout(tmp_path):
    index = build(base_spec())
    with pytest.raises(ValueError, match="layout='mmap'"):
        save_index(index, tmp_path, compress=True)
    with pytest.raises(ValueError, match="unknown layout"):
        save_index(index, tmp_path, layout="tar")


def test_empty_streaming_round_trip_both_layouts(tmp_path):
    from repro.api.registry import get_scenario

    spec = base_spec(kind="streaming")
    donor = build(spec)  # only for its fitted quantizer
    handler = get_scenario("streaming")
    empty = handler.build(
        spec.scenario, None, donor.quantizer, np.empty((0, donor.dim))
    )
    for i, kwargs in enumerate(
        ({}, {"layout": "mmap"}, {"layout": "mmap", "compress": True})
    ):
        dirpath = tmp_path / f"case{i}"
        save_index(empty, dirpath, **kwargs)
        loaded = load_index(dirpath)
        assert loaded.num_vertices == 0
        # The reloaded empty index must keep working as a fresh one.
        new_id = loaded.insert(np.zeros(donor.dim))
        assert new_id == 0 and loaded.num_vertices == 1


# ----------------------------------------------------------------------
# Copy-on-write promotion (the mapped-replica mutation bugfix)
# ----------------------------------------------------------------------


@pytest.mark.slow
def test_mapped_streaming_mutation_never_touches_map(tmp_path, queries):
    index = build(base_spec(kind="streaming"))
    request = SearchRequest(queries=queries, k=5, beam_width=16)
    save_index(index, tmp_path, compress=True, layout="mmap")
    container_path = tmp_path / "index.bin"
    sha_before = _file_sha(container_path)

    writer = load_index(tmp_path)  # the replica that will mutate
    sibling = load_index(tmp_path)  # maps the same container
    sibling_before = sibling.search(request)

    assert writer._mapped and sibling._mapped
    shared_vectors = writer._vectors[0]

    # Mutate the writer: insert, delete, consolidate.
    writer.insert(np.asarray(queries[0], dtype=np.float64))
    writer.delete(1)
    writer.consolidate()

    # Promotion happened: the writer's rows are private memory now.
    assert not writer._mapped
    assert not any(
        np.shares_memory(row, shared_vectors) for row in writer._vectors
    )
    # The sibling replica and the on-disk container are untouched.
    # (Answers are pinned; counters are not — the sibling's second
    # search legitimately hits its now-warm table cache.)
    assert sibling._mapped
    sibling_after = sibling.search(request)
    np.testing.assert_array_equal(sibling_before.ids, sibling_after.ids)
    np.testing.assert_array_equal(
        sibling_before.distances, sibling_after.distances
    )
    np.testing.assert_array_equal(sibling_before.counts, sibling_after.counts)
    assert _file_sha(container_path) == sha_before


def test_mapped_arrays_are_read_only_backstop(tmp_path):
    """Even without the promotion guard, the map itself is a hard
    backstop: v2 arrays are mapped mode='r' and writes raise."""
    index = build(base_spec())
    save_index(index, tmp_path, layout="mmap")
    loaded = load_index(tmp_path)
    assert not loaded.codes.flags.writeable
    with pytest.raises((ValueError, RuntimeError)):
        loaded.codes[0, 0] = 0


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------


def test_storage_report_v1_and_v2(tmp_path, queries):
    index = build(base_spec())
    v1_dir, v2_dir = tmp_path / "v1", tmp_path / "v2"
    save_index(index, v1_dir)
    save_index(index, v2_dir, compress=True, layout="mmap")

    r1 = storage_report(v1_dir)
    assert r1["format_version"] == 1 and r1["layout"] == "npy"
    assert r1["num_vectors"] == 220
    assert r1["components"]["codes.npy"] > 0
    assert r1["total_bytes"] == sum(r1["components"].values())
    assert r1["codes_compression_ratio"] == 1.0

    r2 = storage_report(v2_dir)
    assert r2["format_version"] == 2 and r2["compress"]
    assert r2["num_vectors"] == 220
    assert r2["codes_stored_bytes"] < r2["codes_raw_bytes"]
    assert r2["codes_compression_ratio"] > 1.0
    assert r2["total_bytes"] == sum(r2["components"].values())
    # On-disk truth: the reported total is exactly the directory size.
    disk = sum(
        os.path.getsize(os.path.join(v2_dir, f))
        for f in os.listdir(v2_dir)
        if os.path.isfile(os.path.join(v2_dir, f))
    )
    assert r2["total_bytes"] == disk


def test_storage_report_sharded(tmp_path, queries):
    spec = base_spec()
    index = build(
        IndexSpec(
            dataset=spec.dataset,
            graph=spec.graph,
            quantizer=spec.quantizer,
            scenario=spec.scenario,
            sharding=ShardingSpec(num_shards=2),
        )
    )
    save_index(index, tmp_path, compress=True, layout="mmap")
    report = storage_report(tmp_path)
    assert report["num_shards"] == 2
    assert report["num_vectors"] == 220
    assert report["codes_compression_ratio"] > 1.0
    assert any(k.startswith("shard_001/") for k in report["components"])


# ----------------------------------------------------------------------
# Graph array encoding (HNSW upper layers included)
# ----------------------------------------------------------------------


def test_graph_arrays_round_trip_hnsw():
    from repro.graphs import build_hnsw
    from repro.graphs.serialization import graph_from_arrays, graph_to_arrays

    x = np.random.default_rng(7).standard_normal((120, 8))
    graph = build_hnsw(x, m=6, ef_construction=24, seed=0)
    meta, arrays = graph_to_arrays(graph)
    rebuilt = graph_from_arrays(meta, arrays.__getitem__)
    assert rebuilt.entry_point == graph.entry_point
    assert rebuilt.max_level == graph.max_level
    assert rebuilt.num_vertices == graph.num_vertices
    for v in range(graph.num_vertices):
        np.testing.assert_array_equal(
            rebuilt.adjacency[v], graph.adjacency[v]
        )
    assert len(rebuilt.upper_layers) == len(graph.upper_layers)
    for got, want in zip(rebuilt.upper_layers, graph.upper_layers):
        assert list(got) == list(want)
        for key in want:
            np.testing.assert_array_equal(got[key], want[key])
