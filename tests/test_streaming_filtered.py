"""Tests for the Fresh-DiskANN-style streaming index and the
Filter-DiskANN-style label-filtered index."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import compute_ground_truth, load
from repro.graphs import build_vamana, exact_knn
from repro.index import FilteredMemoryIndex, FreshVamanaIndex
from repro.metrics import recall_at_k
from repro.quantization import ProductQuantizer

RNG = np.random.default_rng(91)


@pytest.fixture(scope="module")
def sift_small():
    data = load("sift", n_base=500, n_queries=12, seed=3)
    quantizer = ProductQuantizer(8, 32, seed=3).fit(data.train)
    return data, quantizer


class TestFreshVamana:
    def make_index(self, data, quantizer, n=200):
        index = FreshVamanaIndex(quantizer, dim=data.dim, r=12, search_l=24, seed=0)
        index.insert_batch(data.base[:n])
        return index

    def test_requires_fitted_quantizer(self, sift_small):
        data, _ = sift_small
        with pytest.raises(ValueError):
            FreshVamanaIndex(ProductQuantizer(4, 8), dim=data.dim)
        with pytest.raises(ValueError):
            FreshVamanaIndex(
                ProductQuantizer(8, 32, seed=0).fit(data.train), dim=data.dim, r=0
            )

    def test_empty_index_search(self, sift_small):
        data, quantizer = sift_small
        index = FreshVamanaIndex(quantizer, dim=data.dim)
        res = index.search(data.queries[0], k=5)
        assert res.ids.size == 0

    def test_insert_and_search(self, sift_small):
        data, quantizer = sift_small
        index = self.make_index(data, quantizer)
        assert index.num_vertices == 200
        assert index.num_active == 200
        res = index.search(data.queries[0], k=10, beam_width=32)
        assert res.ids.shape == (10,)
        assert res.hops > 0

    def test_incremental_recall_close_to_batch(self, sift_small):
        # An index built by streaming inserts should roughly match a
        # batch-built Vamana graph on recall.
        data, quantizer = sift_small
        n = 300
        index = self.make_index(data, quantizer, n=n)
        gt = compute_ground_truth(data.base[:n], data.queries, k=10)
        stream_ids = [
            index.search(q, k=10, beam_width=48).ids for q in data.queries
        ]
        graph = build_vamana(data.base[:n], r=12, search_l=24, seed=0)
        from repro.index import MemoryIndex

        batch = MemoryIndex(graph, quantizer, data.base[:n])
        batch_ids = [
            batch.search(q, k=10, beam_width=48).ids for q in data.queries
        ]
        r_stream = recall_at_k(stream_ids, gt.ids)
        r_batch = recall_at_k(batch_ids, gt.ids)
        assert r_stream >= r_batch - 0.15

    def test_dimension_validation(self, sift_small):
        data, quantizer = sift_small
        index = FreshVamanaIndex(quantizer, dim=data.dim)
        with pytest.raises(ValueError):
            index.insert(np.zeros(3))

    def test_degree_bound_maintained(self, sift_small):
        data, quantizer = sift_small
        index = self.make_index(data, quantizer, n=150)
        assert max(len(a) for a in index._adjacency) <= 12

    def test_delete_hides_results(self, sift_small):
        data, quantizer = sift_small
        index = self.make_index(data, quantizer, n=150)
        query = data.base[7]  # exact match exists
        res = index.search(query, k=1, beam_width=32)
        target = int(res.ids[0])
        index.delete(target)
        assert index.num_deleted == 1
        res2 = index.search(query, k=5, beam_width=32)
        assert target not in res2.ids

    def test_delete_validation(self, sift_small):
        data, quantizer = sift_small
        index = self.make_index(data, quantizer, n=50)
        with pytest.raises(KeyError):
            index.delete(999)
        index.delete(3)
        with pytest.raises(KeyError):
            index.delete(3)

    def test_consolidate_removes_tombstone_edges(self, sift_small):
        data, quantizer = sift_small
        index = self.make_index(data, quantizer, n=150)
        victims = [5, 17, 40]
        for v in victims:
            index.delete(v)
        cleaned = index.consolidate()
        assert cleaned == 3
        for v in victims:
            assert index._adjacency[v] == []
        # No live vertex should still point at a tombstone.
        for v, nbrs in enumerate(index._adjacency):
            if not index._deleted[v]:
                assert not set(nbrs) & set(victims)

    def test_search_quality_survives_consolidation(self, sift_small):
        data, quantizer = sift_small
        n = 250
        index = self.make_index(data, quantizer, n=n)
        victims = list(range(0, 50))
        for v in victims:
            index.delete(v)
        index.consolidate()
        alive = np.arange(50, n)
        gt_ids, _ = exact_knn(data.base[alive], 10, queries=data.queries)
        got = []
        for q in data.queries:
            res = index.search(q, k=10, beam_width=48)
            got.append([int(np.flatnonzero(alive == i)[0]) for i in res.ids])
        recall = recall_at_k([np.array(g) for g in got], gt_ids)
        assert recall > 0.4

    def test_entry_reassignment_after_entry_delete(self, sift_small):
        data, quantizer = sift_small
        index = self.make_index(data, quantizer, n=100)
        entry = index._entry
        index.delete(entry)
        index.consolidate()
        assert index._entry != entry
        res = index.search(data.queries[0], k=5, beam_width=24)
        assert res.ids.size == 5

    def test_consolidate_noop_without_deletes(self, sift_small):
        data, quantizer = sift_small
        index = self.make_index(data, quantizer, n=60)
        assert index.consolidate() == 0


class TestFilteredIndex:
    def make(self, data, quantizer, num_labels=4, n=400):
        graph = build_vamana(data.base[:n], r=12, search_l=24, seed=0)
        labels = np.arange(n) % num_labels
        index = FilteredMemoryIndex(graph, quantizer, data.base[:n], labels)
        return index, labels, n

    def test_label_validation(self, sift_small):
        data, quantizer = sift_small
        graph = build_vamana(data.base[:100], r=8, search_l=16, seed=0)
        with pytest.raises(ValueError):
            FilteredMemoryIndex(graph, quantizer, data.base[:100], np.zeros(5))

    def test_results_respect_filter(self, sift_small):
        data, quantizer = sift_small
        index, labels, n = self.make(data, quantizer)
        for label in range(4):
            res = index.search(data.queries[0], label=label, k=5)
            assert (labels[res.ids] == label).all()
            assert res.ids.size == 5

    def test_escalation_for_rare_labels(self, sift_small):
        data, quantizer = sift_small
        n = 300
        graph = build_vamana(data.base[:n], r=12, search_l=24, seed=0)
        labels = np.zeros(n, dtype=int)
        labels[:5] = 7  # rare label: only 5 carriers
        index = FilteredMemoryIndex(graph, quantizer, data.base[:n], labels)
        res = index.search(
            data.queries[0], label=7, k=5, beam_width=10, max_beam_width=512
        )
        assert res.ids.size == 5
        assert res.beam_width_used > 10  # had to escalate

    def test_filtered_recall_against_exact(self, sift_small):
        data, quantizer = sift_small
        index, labels, n = self.make(data, quantizer)
        label = 2
        members = np.flatnonzero(labels == label)
        hits = 0
        for q in data.queries:
            d = ((data.base[members] - q) ** 2).sum(axis=1)
            exact = set(members[np.argsort(d)[:5]].tolist())
            res = index.search(q, label=label, k=5, beam_width=32)
            hits += len(exact & set(res.ids.tolist()))
        assert hits / (len(data.queries) * 5) > 0.4

    def test_k_validation(self, sift_small):
        data, quantizer = sift_small
        index, _, _ = self.make(data, quantizer, n=100)
        with pytest.raises(ValueError):
            index.search(data.queries[0], label=0, k=0)

    def test_label_count(self, sift_small):
        data, quantizer = sift_small
        index, labels, n = self.make(data, quantizer, n=100)
        assert index.label_count(0) == (labels == 0).sum()
        assert index.label_count(99) == 0
